//! The experiment runner: descriptors, a deterministic worker pool, and
//! run manifests.
//!
//! Every artifact binary and the `sbcast` front end used to carry its own
//! loop over (scheme × bandwidth) plus its own JSON plumbing. This module
//! centralizes that: an [`Experiment`] names the grid (scheme lineup ×
//! bandwidth grid × workload seed), a [`Runner`] executes closures over
//! slices with a fixed-size `std::thread::scope` pool, and a
//! [`RunManifest`] records what ran and how long each stage took.
//!
//! **Determinism is the design constraint.** Workers pull item indices
//! from a shared counter and return `(index, result)` pairs; the runner
//! reassembles results *by index*, so the output of [`Runner::map`] is
//! identical to the serial loop for every thread count. Anything
//! non-deterministic (wall-clock timings, progress counters) goes to
//! stderr or the manifest, never to the result values — `--threads 8`
//! must serialize to the same bytes as `--threads 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use crate::crosscheck::{crosscheck_seeded, crosscheck_seeded_recorded, CrossCheck};
use crate::lineup::SchemeId;
use crate::sweep::{evaluate, SweepRow};
use sb_core::config::SystemConfig;
use sb_metrics::{Registry, Snapshot};
use sb_sim::AgendaKind;

/// A named evaluation grid: which schemes, at which bandwidths, under
/// which workload seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Name used in manifests and progress output.
    pub name: String,
    /// The scheme lineup.
    pub schemes: Vec<SchemeId>,
    /// Server bandwidths (Mb/s) to evaluate at.
    pub bandwidths: Vec<f64>,
    /// Seed for the empirical workload (arrival-phase scramble); 0 is the
    /// legacy fixed grid.
    pub seed: u64,
}

impl Experiment {
    /// An experiment over an explicit bandwidth list.
    #[must_use]
    pub fn new(name: &str, schemes: Vec<SchemeId>, bandwidths: Vec<f64>) -> Self {
        Self {
            name: name.to_string(),
            schemes,
            bandwidths,
            seed: 0,
        }
    }

    /// An experiment over `[from, to]` in steps of `step` Mb/s.
    ///
    /// # Panics
    /// Panics on a degenerate range or step.
    #[must_use]
    pub fn over_range(name: &str, schemes: Vec<SchemeId>, from: f64, to: f64, step: f64) -> Self {
        assert!(step > 0.0 && to >= from, "bad sweep range");
        let mut bandwidths = Vec::new();
        let mut b = from;
        while b <= to + 1e-9 {
            bandwidths.push(b);
            b += step;
        }
        Self::new(name, schemes, bandwidths)
    }

    /// Set the workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full (scheme, bandwidth) grid, bandwidth-major — the exact
    /// order the serial loops have always used.
    #[must_use]
    pub fn grid(&self) -> Vec<(SchemeId, f64)> {
        self.bandwidths
            .iter()
            .flat_map(|&b| self.schemes.iter().map(move |&id| (id, b)))
            .collect()
    }
}

/// Wall-clock record of one runner stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage label (usually the experiment name).
    pub stage: String,
    /// Items mapped.
    pub items: usize,
    /// Worker threads used for this stage.
    pub threads: usize,
    /// Wall-clock milliseconds.
    pub wall_ms: u64,
}

/// What a run did and how long it took — written next to (never into) the
/// result JSON, because timings differ run to run while results must not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The runner's configured thread count.
    pub threads: usize,
    /// Per-stage timings, in execution order.
    pub stages: Vec<StageTiming>,
}

impl RunManifest {
    /// Total wall-clock milliseconds across stages.
    #[must_use]
    pub fn total_wall_ms(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ms).sum()
    }

    /// One line per stage, for stderr.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            out.push_str(&format!(
                "{}: {} items on {} thread(s) in {} ms\n",
                s.stage, s.items, s.threads, s.wall_ms
            ));
        }
        out.push_str(&format!(
            "total: {} ms ({} thread(s) configured)\n",
            self.total_wall_ms(),
            self.threads
        ));
        out
    }
}

/// A deterministic worker pool.
pub struct Runner {
    threads: usize,
    progress: bool,
    agenda: AgendaKind,
    timings: Mutex<Vec<StageTiming>>,
}

impl Runner {
    /// A runner with `threads` workers; `0` means one per available core.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        Self {
            threads,
            progress: false,
            agenda: AgendaKind::Heap,
            timings: Mutex::new(Vec::new()),
        }
    }

    /// The serial runner — the reference the parallel paths must match.
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Enable `completed/total` progress counters on stderr.
    #[must_use]
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Select the engine event-store backend for every simulation this
    /// runner drives (default [`AgendaKind::Heap`]). Purely an execution
    /// knob: studies pass it through to [`sb_sim::RunConfig::agenda`], and
    /// heap and wheel runs serialize to identical bytes.
    #[must_use]
    pub fn with_agenda(mut self, agenda: AgendaKind) -> Self {
        self.agenda = agenda;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured engine backend.
    #[must_use]
    pub fn agenda(&self) -> AgendaKind {
        self.agenda
    }

    /// Map `f` over `items`, preserving order. With one thread (or one
    /// item) this is the plain serial loop; otherwise workers race through
    /// a shared index counter and results are reassembled by index, so the
    /// output is identical either way.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        self.map_inner(items, &f, None)
    }

    /// [`Runner::map`] plus a [`StageTiming`] entry in the manifest (and,
    /// with progress on, live counters labelled `stage` on stderr).
    pub fn timed_map<T: Sync, R: Send>(
        &self,
        stage: &str,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let t0 = Instant::now();
        let out = self.map_inner(items, &f, Some(stage));
        self.timings
            .lock()
            .expect("timings poisoned")
            .push(StageTiming {
                stage: stage.to_string(),
                items: items.len(),
                threads: self.threads.min(items.len().max(1)),
                wall_ms: u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX),
            });
        out
    }

    /// The shared mapping core: [`sb_sim::parallel_map`] does the claiming
    /// and reassembly, so a panicking cell surfaces as
    /// `"<stage>: worker panicked on item <index>/<n>: <payload>"` instead
    /// of an anonymous worker-join abort. Progress counters ride along in
    /// the closure (stderr only — results never depend on them).
    fn map_inner<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: &(impl Fn(&T) -> R + Sync),
        stage: Option<&str>,
    ) -> Vec<R> {
        let n = items.len();
        let done = AtomicUsize::new(0);
        let out = sb_sim::parallel_map(self.threads, stage.unwrap_or("map"), items, |_, t| {
            let r = f(t);
            if self.progress {
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(s) = stage {
                    eprint!("\r{s}: {d}/{n} ");
                }
            }
            r
        });
        if self.progress && stage.is_some() {
            eprintln!();
        }
        out
    }

    /// The manifest accumulated so far (stages recorded by
    /// [`Runner::timed_map`]).
    #[must_use]
    pub fn manifest(&self) -> RunManifest {
        RunManifest {
            threads: self.threads,
            stages: self.timings.lock().expect("timings poisoned").clone(),
        }
    }
}

/// Execute the analytic half of `exp`: one [`SweepRow`] per bandwidth,
/// bandwidths in parallel. Identical to the serial
/// [`crate::sweep::sweep_bandwidth`] loop for every thread count.
#[must_use]
pub fn run_sweep(exp: &Experiment, runner: &Runner) -> Vec<SweepRow> {
    runner.timed_map(&exp.name, &exp.bandwidths, |&b| {
        let cfg = SystemConfig::paper_defaults(Mbps(b));
        SweepRow {
            bandwidth: Mbps(b),
            points: exp
                .schemes
                .iter()
                .filter_map(|&id| evaluate(id, &cfg))
                .collect(),
        }
    })
}

/// Execute the empirical half of `exp`: a simulated arrival-grid
/// cross-check per feasible (scheme, bandwidth) cell, cells in parallel.
/// `exp.seed` scrambles the arrival phase (0 = the legacy grid).
#[must_use]
pub fn run_crosscheck(
    exp: &Experiment,
    horizon: Minutes,
    samples: usize,
    runner: &Runner,
) -> Vec<CrossCheck> {
    let grid = exp.grid();
    let stage = format!("{}:sim", exp.name);
    runner
        .timed_map(&stage, &grid, |&(id, b)| {
            crosscheck_seeded(id, Mbps(b), horizon, samples, exp.seed)
        })
        .into_iter()
        .flatten()
        .collect()
}

/// [`run_crosscheck`] additionally collecting a merged metrics
/// [`Snapshot`]. Each grid cell records into its own private
/// [`Registry`]; the per-cell snapshots are merged *in grid (index)
/// order*, so both the checks and the snapshot are byte-identical for
/// every thread count.
#[must_use]
pub fn run_crosscheck_instrumented(
    exp: &Experiment,
    horizon: Minutes,
    samples: usize,
    runner: &Runner,
) -> (Vec<CrossCheck>, Snapshot) {
    let grid = exp.grid();
    let stage = format!("{}:sim", exp.name);
    let cells: Vec<(Option<CrossCheck>, Snapshot)> = runner.timed_map(&stage, &grid, |&(id, b)| {
        let mut reg = Registry::new();
        let check = crosscheck_seeded_recorded(id, Mbps(b), horizon, samples, exp.seed, &mut reg);
        (check, reg.snapshot())
    });
    let mut checks = Vec::new();
    let mut snapshot = Snapshot::default();
    for (check, snap) in cells {
        checks.extend(check);
        snapshot.merge(&snap);
    }
    (checks, snapshot)
}

/// Analytic sweep plus empirical cross-check, as one serializable report —
/// the `sbcast sweep --json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The experiment that produced this report.
    pub experiment: Experiment,
    /// Analytic rows, one per bandwidth.
    pub rows: Vec<SweepRow>,
    /// Empirical checks, bandwidth-major, infeasible cells absent. Empty
    /// when the run was analytic-only.
    pub checks: Vec<CrossCheck>,
}

/// Run `exp` end to end: analytic rows always, plus `samples`-arrival
/// cross-checks when `samples > 0`.
#[must_use]
pub fn run_experiment(
    exp: &Experiment,
    horizon: Minutes,
    samples: usize,
    runner: &Runner,
) -> SweepReport {
    let rows = run_sweep(exp, runner);
    let checks = if samples > 0 {
        run_crosscheck(exp, horizon, samples, runner)
    } else {
        Vec::new()
    };
    SweepReport {
        experiment: exp.clone(),
        rows,
        checks,
    }
}

/// [`run_experiment`] additionally returning the merged metrics snapshot
/// of the empirical half. The [`SweepReport`] is byte-identical to the
/// uninstrumented one; the snapshot is empty for analytic-only runs.
#[must_use]
pub fn run_experiment_instrumented(
    exp: &Experiment,
    horizon: Minutes,
    samples: usize,
    runner: &Runner,
) -> (SweepReport, Snapshot) {
    let rows = run_sweep(exp, runner);
    let (checks, snapshot) = if samples > 0 {
        run_crosscheck_instrumented(exp, horizon, samples, runner)
    } else {
        (Vec::new(), Snapshot::default())
    };
    (
        SweepReport {
            experiment: exp.clone(),
            rows,
            checks,
        },
        snapshot,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup::{extended_lineup, paper_lineup};
    #[allow(deprecated)]
    use crate::sweep::sweep_bandwidth;

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..137).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let runner = Runner::new(threads);
            let par = runner.map(&items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(Runner::new(0).threads() >= 1);
        assert_eq!(Runner::serial().threads(), 1);
    }

    #[test]
    fn agenda_defaults_to_heap_and_is_settable() {
        assert_eq!(Runner::serial().agenda(), AgendaKind::Heap);
        let r = Runner::new(2).with_agenda(AgendaKind::Wheel);
        assert_eq!(r.agenda(), AgendaKind::Wheel);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let exp = Experiment::over_range("t", paper_lineup(), 100.0, 600.0, 50.0);
        // The deprecated serial helper stays the reference point here:
        // the parity it pins is exactly why it could be deprecated.
        #[allow(deprecated)]
        let serial = sweep_bandwidth(&exp.schemes, 100.0, 600.0, 50.0);
        let par = run_sweep(&exp, &Runner::new(8));
        assert_eq!(par, serial);
        let a = serde_json::to_string(&par).unwrap();
        let b = serde_json::to_string(&serial).unwrap();
        assert_eq!(a, b, "serialized bytes must match");
    }

    #[test]
    fn crosscheck_grid_order_is_bandwidth_major() {
        let exp = Experiment::new("t", extended_lineup(), vec![300.0, 320.0]);
        let g = exp.grid();
        assert_eq!(g.len(), 20);
        assert_eq!(g[0], (exp.schemes[0], 300.0));
        assert_eq!(g[10], (exp.schemes[0], 320.0));
    }

    #[test]
    fn manifest_records_stages() {
        let runner = Runner::new(2);
        let _ = runner.timed_map("alpha", &[1, 2, 3], |&x: &i32| x + 1);
        let _ = runner.timed_map("beta", &[1], |&x: &i32| x);
        let m = runner.manifest();
        assert_eq!(m.threads, 2);
        assert_eq!(m.stages.len(), 2);
        assert_eq!(m.stages[0].stage, "alpha");
        assert_eq!(m.stages[0].items, 3);
        assert_eq!(m.stages[0].threads, 2);
        assert_eq!(m.stages[1].threads, 1, "one item uses one worker");
        assert!(m.summary().contains("alpha: 3 items"));
    }

    #[test]
    fn empty_input_is_fine() {
        let runner = Runner::new(4);
        let out: Vec<u8> = runner.map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_cell_names_the_stage_and_grid_index() {
        // Regression: the old pool surfaced worker deaths as an anonymous
        // "runner worker panicked", losing which cell of which experiment
        // blew up. The message must now carry both.
        for threads in [1, 4] {
            let runner = Runner::new(threads);
            let items: Vec<u32> = (0..32).collect();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                runner.timed_map("bw-sweep", &items, |&x| {
                    assert!(x != 13, "cell 13 exploded");
                    x
                })
            }))
            .expect_err("the panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .expect("panic payload is a string");
            assert!(msg.contains("bw-sweep"), "no stage label in: {msg}");
            assert!(msg.contains("item 13/32"), "no grid index in: {msg}");
            assert!(msg.contains("cell 13 exploded"), "payload lost in: {msg}");
        }
    }
}
