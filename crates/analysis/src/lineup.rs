//! The scheme lineup of §5's performance study.
//!
//! "We investigated the proposed technique under four different values of
//! W …, namely 2, 52, 1705, and 54612. They are the values of the 2-nd,
//! 10-th, 20-th and 30-th elements of the broadcast series" — plus the
//! uncapped scheme, the two PB rules, the two PPB rules, and (as the §1
//! reference point, not in the paper's figures) staggered broadcasting.

use serde::{Deserialize, Serialize};

use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::{
    AdaptiveQuasiHarmonic, Ctifb, FastBroadcasting, HarmonicBroadcasting, PermutationPyramid,
    PyramidBroadcasting, StaggeredBroadcasting,
};

/// Identifier for every scheme in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeId {
    /// Skyscraper with a given width (`None` = unbounded).
    Sb(Option<u64>),
    /// Pyramid Broadcasting, rule a.
    PbA,
    /// Pyramid Broadcasting, rule b.
    PbB,
    /// Permutation-Based Pyramid Broadcasting, rule a.
    PpbA,
    /// Permutation-Based Pyramid Broadcasting, rule b.
    PpbB,
    /// Staggered whole-file broadcasting.
    Staggered,
    /// Fast Broadcasting (Juhn & Tseng) — landscape context, not in the
    /// paper's figures.
    Fast,
    /// Harmonic Broadcasting, delayed (corrected) variant — landscape
    /// context, not in the paper's figures.
    Harmonic,
    /// Channel Transition Invariant Fast Broadcasting — successor
    /// landscape, not in the paper's figures.
    Ctifb,
    /// Adaptive Quasi-Harmonic Broadcasting — successor landscape, not in
    /// the paper's figures.
    Aqhb,
}

impl SchemeId {
    /// Instantiate the scheme.
    #[must_use]
    pub fn build(&self) -> Box<dyn BroadcastScheme> {
        match *self {
            SchemeId::Sb(None) => Box::new(Skyscraper::unbounded()),
            SchemeId::Sb(Some(w)) => Box::new(Skyscraper::with_width(
                Width::capped(w).expect("lineup widths are series values"),
            )),
            SchemeId::PbA => Box::new(PyramidBroadcasting::a()),
            SchemeId::PbB => Box::new(PyramidBroadcasting::b()),
            SchemeId::PpbA => Box::new(PermutationPyramid::a()),
            SchemeId::PpbB => Box::new(PermutationPyramid::b()),
            SchemeId::Staggered => Box::new(StaggeredBroadcasting),
            SchemeId::Fast => Box::new(FastBroadcasting),
            SchemeId::Harmonic => Box::new(HarmonicBroadcasting::delayed()),
            SchemeId::Ctifb => Box::new(Ctifb),
            SchemeId::Aqhb => Box::new(AdaptiveQuasiHarmonic),
        }
    }

    /// Parse the CLI spelling of a scheme: `SB:W=<w>`, `SB:W=inf`,
    /// `PB:a`/`PB:b`, `PPB:a`/`PPB:b` or `STAG` (the landscape-only
    /// schemes have no CLI spelling; they enter studies through the
    /// lineup constructors).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "PB:a" => Some(SchemeId::PbA),
            "PB:b" => Some(SchemeId::PbB),
            "PPB:a" => Some(SchemeId::PpbA),
            "PPB:b" => Some(SchemeId::PpbB),
            "STAG" => Some(SchemeId::Staggered),
            s if s.starts_with("SB:W=") => {
                let w = &s["SB:W=".len()..];
                if w == "inf" {
                    Some(SchemeId::Sb(None))
                } else {
                    w.parse::<u64>().ok().map(|w| SchemeId::Sb(Some(w)))
                }
            }
            _ => None,
        }
    }

    /// The display label used in figures.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            SchemeId::Sb(None) => "SB:W=inf".to_string(),
            SchemeId::Sb(Some(w)) => format!("SB:W={w}"),
            SchemeId::PbA => "PB:a".to_string(),
            SchemeId::PbB => "PB:b".to_string(),
            SchemeId::PpbA => "PPB:a".to_string(),
            SchemeId::PpbB => "PPB:b".to_string(),
            SchemeId::Staggered => "STAG".to_string(),
            SchemeId::Fast => "FB".to_string(),
            SchemeId::Harmonic => "HB:delayed".to_string(),
            SchemeId::Ctifb => "CTIFB".to_string(),
            SchemeId::Aqhb => "AQHB".to_string(),
        }
    }
}

/// The §5.2 widths: the 2nd, 10th, 20th and 30th series elements.
pub const PAPER_WIDTHS: [u64; 4] = [2, 52, 1705, 54612];

/// The full §5 lineup, in the order the paper's figure legends list them.
#[must_use]
pub fn paper_lineup() -> Vec<SchemeId> {
    let mut v: Vec<SchemeId> = PAPER_WIDTHS
        .iter()
        .map(|&w| SchemeId::Sb(Some(w)))
        .collect();
    v.push(SchemeId::Sb(None));
    v.extend([SchemeId::PbA, SchemeId::PbB, SchemeId::PpbA, SchemeId::PpbB]);
    v
}

/// The lineup plus the staggered reference scheme.
#[must_use]
pub fn extended_lineup() -> Vec<SchemeId> {
    let mut v = paper_lineup();
    v.push(SchemeId::Staggered);
    v
}

/// The full landscape: the paper's lineup plus staggered, Fast
/// Broadcasting, (corrected) Harmonic Broadcasting, and the two
/// successors CTIFB and AQHB.
#[must_use]
pub fn landscape_lineup() -> Vec<SchemeId> {
    let mut v = extended_lineup();
    v.extend([
        SchemeId::Fast,
        SchemeId::Harmonic,
        SchemeId::Ctifb,
        SchemeId::Aqhb,
    ]);
    v
}

/// Resolve a `--scheme` argument: `all` is the extended lineup, anything
/// else one parsed scheme.
///
/// # Errors
/// Returns the CLI-facing message for an unknown spelling.
pub fn schemes_from(opt: &str) -> Result<Vec<SchemeId>, String> {
    if opt == "all" {
        Ok(extended_lineup())
    } else {
        SchemeId::parse(opt)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown scheme `{opt}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::config::SystemConfig;
    use vod_units::Mbps;

    #[test]
    fn parse_round_trips_every_cli_spelling() {
        for id in extended_lineup() {
            assert_eq!(SchemeId::parse(&id.label()), Some(id));
        }
        assert_eq!(SchemeId::parse("SB:W=inf"), Some(SchemeId::Sb(None)));
        assert_eq!(SchemeId::parse("HB:delayed"), None, "landscape-only");
        assert_eq!(SchemeId::parse("SB:W=x"), None);
        assert_eq!(schemes_from("all").unwrap(), extended_lineup());
        assert_eq!(
            schemes_from("nope").unwrap_err(),
            "unknown scheme `nope`".to_string()
        );
    }

    #[test]
    fn lineup_order_and_labels() {
        let ids = paper_lineup();
        assert_eq!(ids.len(), 9);
        assert_eq!(ids[0].label(), "SB:W=2");
        assert_eq!(ids[3].label(), "SB:W=54612");
        assert_eq!(ids[4].label(), "SB:W=inf");
        assert_eq!(ids[8].label(), "PPB:b");
        assert_eq!(extended_lineup().len(), 10);
    }

    #[test]
    fn landscape_extends_cleanly() {
        let ids = landscape_lineup();
        assert_eq!(ids.len(), 14);
        assert_eq!(ids[10].label(), "FB");
        assert_eq!(ids[11].label(), "HB:delayed");
        assert_eq!(ids[12].label(), "CTIFB");
        assert_eq!(ids[13].label(), "AQHB");
    }

    #[test]
    fn every_scheme_instantiates_and_evaluates_at_320() {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        for id in landscape_lineup() {
            let scheme = id.build();
            let m = scheme.metrics(&cfg);
            assert!(m.is_ok(), "{} failed: {:?}", id.label(), m.err());
            assert_eq!(
                scheme.name().replace("W=∞", "W=inf"),
                id.label(),
                "label/name mismatch"
            );
        }
    }

    #[test]
    fn paper_widths_are_series_elements() {
        for (idx, w) in [(2usize, 2u64), (10, 52), (20, 1705), (30, 54612)] {
            assert_eq!(sb_core::series::unit(idx), w);
        }
    }
}
