//! # Evaluation machinery for the Skyscraper Broadcasting reproduction
//!
//! Everything §5 of the paper plots or tabulates, regenerated:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`lineup`] | the scheme lineup of §5 (SB at the studied widths, PB:a/b, PPB:a/b, staggered) |
//! | [`sweep`] | the bandwidth sweep 100–600 Mb/s underlying Figures 5–8 |
//! | [`figures`] | Figure 5 (K, P, α), Figure 6 (disk bandwidth), Figure 7 (latency), Figure 8 (storage), Figures 1–4 (buffer-transition profiles) |
//! | [`tables`] | Table 1 (performance formulas, evaluated) and Table 2 (design parameters) |
//! | [`render`] | plain-text rendering of figures/tables plus JSON export |
//! | [`crosscheck`] | analytic-vs-simulated comparison for `EXPERIMENTS.md` |
//! | [`frontier`] | the Pareto frontier in latency × client-I/O × buffer over a bandwidth × catalog grid, analytic and simulated |
//! | [`ablation`] | beyond-paper studies: series shape and width sensitivity |
//! | [`hybrid_study`] | §1's hybrid-vs-pure-batching throughput argument, measured |
//! | [`control_study`] | static-vs-dynamic channel allocation under a popularity shift |
//! | [`resilience_study`] | schemes under bursty loss/outages and the control plane's recovery |
//! | [`recovery_study`] | checkpoint-cadence trade under the crash-recovery supervisor: checkpoints vs replayed sessions, byte-identity re-verified per cell |
//! | [`throughput`] | streaming-core throughput cells and the agenda-churn compaction stress |
//! | [`scale_study`] | sharded scale-out: per-shard agenda footprint and sim-time rates vs `S` |
//! | [`scenario_study`] | metropolitan scenarios: per-region-class SB vs baselines, flash crowds, correlated outages, diurnal × density |
//! | [`mod@distribution_study`] | the distributed tier: placement policies × peer assist priced against the Viennot source-once bound |
//! | [`study`] | the [`study::Study`] trait and registry every CLI subcommand and bench bin dispatches through |
//! | [`runner`] | [`runner::Experiment`] descriptors, the deterministic parallel [`runner::Runner`], and [`runner::RunManifest`] timings |
//!
//! The binaries in `sb-bench` are thin wrappers over this crate: each
//! prints one paper artifact (`fig5` … `fig8`, `table1`, `table2`,
//! `fig1_4`, `ablation`).

#![forbid(unsafe_code)]

pub mod ablation;
pub mod control_study;
pub mod crosscheck;
pub mod distribution_study;
pub mod figures;
pub mod frontier;
pub mod hybrid_study;
pub mod lineup;
pub mod recovery_study;
pub mod render;
pub mod resilience_study;
pub mod runner;
pub mod scale_study;
pub mod scenario_study;
pub mod study;
pub mod sweep;
pub mod tables;
pub mod throughput;

pub use distribution_study::{
    distribution_study, render_distribution, DistributionReport, DistributionStudyConfig,
};
pub use figures::Figure;
pub use frontier::{frontier_report, render_frontier, FrontierConfig, FrontierReport};
pub use lineup::{paper_lineup, SchemeId};
pub use runner::{Experiment, RunManifest, Runner};
pub use study::{find, registry, Study, StudyCtx, StudyOpts, StudyOutput};
pub use sweep::SweepRow;
