//! Static-vs-dynamic control under a popularity shift, measured.
//!
//! The paper's hybrid fixes its popular set offline. This study asks what
//! that costs when popularity drifts: a [`PopularityShift`] workload
//! rotates the Zipf ranking mid-run, so the titles the static split
//! broadcasts stop being the ones viewers ask for. Every post-shift
//! request for a new favourite then queues at the batching pool — whose
//! service time is a whole video — while the broadcast channels
//! periodically transmit titles nobody wants.
//!
//! [`shift_study`] runs the *same* request streams through
//! [`ControlledSim`] twice, once per [`ControlPolicy`], over a set of
//! seeds. Arrival times and patience draws are identical between the two
//! runs (the shift only relabels which title is asked for), so any
//! latency difference is attributable to reallocation alone. Per-seed
//! cells run in parallel on the [`Runner`]; metrics snapshots are merged
//! in seed order with a `policy` label, so the output is byte-identical
//! for every thread count.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_control::{ControlConfig, ControlPolicy, ControlReport, ControlledSim};
use sb_core::error::Result;
use sb_metrics::{Recorder, Registry, Snapshot};
use sb_sim::RunConfig;
use sb_workload::{Catalog, Patience, PoissonArrivals, PopularityShift, ZipfPopularity};

use crate::runner::Runner;

/// Parameters of the popularity-shift study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftStudyConfig {
    /// The controlled-server configuration shared by both policies.
    pub control: ControlConfig,
    /// Arrival rate, requests per minute.
    pub rate: f64,
    /// Workload horizon.
    pub horizon: Minutes,
    /// When the popularity ranking rotates.
    pub shift_at: Minutes,
    /// How far the ranking rotates (`new rank = (old + rotate) % titles`).
    pub rotate: usize,
    /// Mean viewer patience (exponential).
    pub mean_patience: Minutes,
    /// One simulation cell per seed; results are averaged over them.
    pub seeds: Vec<u64>,
}

impl ShiftStudyConfig {
    /// A saturating default: long patient queues against a small pool, so
    /// a stale hot set actually hurts. The rotation pushes the entire old
    /// head out of the broadcast slots.
    #[must_use]
    pub fn paper_defaults() -> Self {
        let control = ControlConfig::paper_defaults(vod_units::Mbps(300.0));
        Self {
            rotate: control.titles / 2,
            control,
            rate: 6.0,
            horizon: Minutes(600.0),
            shift_at: Minutes(150.0),
            mean_patience: Minutes(45.0),
            seeds: vec![11, 23, 47],
        }
    }
}

/// Both policies' reports for one workload seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftCell {
    /// Workload seed.
    pub seed: u64,
    /// The run with the hot set frozen at `{0..m}`.
    pub static_report: ControlReport,
    /// The run with online reallocation.
    pub dynamic_report: ControlReport,
}

/// The whole study: per-seed cells plus cross-seed latency means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftStudy {
    /// The configuration that produced this study.
    pub config: ShiftStudyConfig,
    /// One cell per seed, in seed order.
    pub cells: Vec<ShiftCell>,
    /// Mean served-request latency under the static policy, averaged
    /// across seeds.
    pub static_mean_latency: Minutes,
    /// Same under the dynamic policy.
    pub dynamic_mean_latency: Minutes,
    /// Served requests (both halves), summed across seeds, per policy.
    pub static_served: usize,
    /// Served requests under the dynamic policy.
    pub dynamic_served: usize,
}

/// Forwards to a [`Registry`] with a `policy` label appended to every
/// series, so static and dynamic runs stay distinct after merging.
struct PolicyLabeled<'a> {
    inner: &'a mut Registry,
    policy: &'static str,
}

impl Recorder for PolicyLabeled<'_> {
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        let mut l = labels.to_vec();
        l.push(("policy", self.policy));
        self.inner.incr(name, &l, by);
    }

    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut l = labels.to_vec();
        l.push(("policy", self.policy));
        self.inner.gauge_max(name, &l, v);
    }

    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut l = labels.to_vec();
        l.push(("policy", self.policy));
        self.inner.observe(name, &l, v);
    }
}

/// Run the study. Cells (seeds) run in parallel on `runner`; the report
/// and the merged snapshot are byte-identical for every thread count.
///
/// Returns an error when the control configuration cannot sustain the
/// broadcast slots or leaves no pool.
pub fn shift_study(cfg: &ShiftStudyConfig, runner: &Runner) -> Result<(ShiftStudy, Snapshot)> {
    let catalog = Catalog::paper_defaults(cfg.control.titles);
    let sim = ControlledSim::new(cfg.control, &catalog)?;
    let popularity = ZipfPopularity::paper(cfg.control.titles);

    let cells: Vec<(ShiftCell, Snapshot)> =
        runner.timed_map("control-shift", &cfg.seeds, |&seed| {
            let requests = PopularityShift {
                arrivals: PoissonArrivals::new(cfg.rate, seed)
                    .with_patience(Patience::Exponential(cfg.mean_patience)),
                shift_at: cfg.shift_at,
                rotate: cfg.rotate,
            }
            .generate(&popularity, cfg.horizon);

            let mut reg = Registry::new();
            let static_report = sim
                .execute(
                    ControlPolicy::Static,
                    RunConfig::new(&requests).agenda(runner.agenda()).recorder(
                        &mut PolicyLabeled {
                            inner: &mut reg,
                            policy: "static",
                        },
                    ),
                )
                .expect("the empty fault script is always valid")
                .summary;
            let dynamic_report = sim
                .execute(
                    ControlPolicy::Dynamic,
                    RunConfig::new(&requests).agenda(runner.agenda()).recorder(
                        &mut PolicyLabeled {
                            inner: &mut reg,
                            policy: "dynamic",
                        },
                    ),
                )
                .expect("the empty fault script is always valid")
                .summary;
            (
                ShiftCell {
                    seed,
                    static_report,
                    dynamic_report,
                },
                reg.snapshot(),
            )
        });

    let mut out = Vec::with_capacity(cells.len());
    let mut snapshot = Snapshot::default();
    for (cell, snap) in cells {
        snapshot.merge(&snap);
        out.push(cell);
    }

    let n = out.len().max(1) as f64;
    let static_mean_latency = Minutes(
        out.iter()
            .map(|c| c.static_report.mean_latency.value())
            .sum::<f64>()
            / n,
    );
    let dynamic_mean_latency = Minutes(
        out.iter()
            .map(|c| c.dynamic_report.mean_latency.value())
            .sum::<f64>()
            / n,
    );
    let served = |r: &ControlReport| r.served_broadcast + r.served_pool;
    let static_served = out.iter().map(|c| served(&c.static_report)).sum();
    let dynamic_served = out.iter().map(|c| served(&c.dynamic_report)).sum();

    Ok((
        ShiftStudy {
            config: cfg.clone(),
            cells: out,
            static_mean_latency,
            dynamic_mean_latency,
            static_served,
            dynamic_served,
        },
        snapshot,
    ))
}

/// Plain-text rendering of a [`ShiftStudy`] for the CLI.
#[must_use]
pub fn render_shift_study(study: &ShiftStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "popularity-shift study: rate {}/min, shift at {} min, rotate {}\n",
        study.config.rate,
        study.config.shift_at.value(),
        study.config.rotate
    ));
    out.push_str("seed   policy    served  defected  rejected  swaps  mean-lat  p95-lat\n");
    for c in &study.cells {
        for (name, r) in [("static", &c.static_report), ("dynamic", &c.dynamic_report)] {
            out.push_str(&format!(
                "{:<6} {:<8} {:>7} {:>9} {:>9} {:>6} {:>9.3} {:>8.3}\n",
                c.seed,
                name,
                r.served_broadcast + r.served_pool,
                r.defected,
                r.rejected,
                r.swaps_committed,
                r.mean_latency.value(),
                r.p95_latency.value(),
            ));
        }
    }
    out.push_str(&format!(
        "mean latency: static {:.3} min, dynamic {:.3} min\n",
        study.static_mean_latency.value(),
        study.dynamic_mean_latency.value()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ShiftStudyConfig {
        ShiftStudyConfig {
            horizon: Minutes(400.0),
            seeds: vec![11, 23],
            ..ShiftStudyConfig::paper_defaults()
        }
    }

    #[test]
    fn dynamic_beats_static_under_a_shift() {
        let (study, snap) = shift_study(&quick_config(), &Runner::serial()).unwrap();
        assert!(
            study.dynamic_mean_latency < study.static_mean_latency,
            "dynamic {} vs static {}",
            study.dynamic_mean_latency,
            study.static_mean_latency
        );
        // The snapshot keeps the two policies apart.
        assert!(snap.counter_total("control_reallocations_total") > 0);
        let txt = render_shift_study(&study);
        assert!(txt.contains("dynamic"));
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let cfg = quick_config();
        let (serial, s_snap) = shift_study(&cfg, &Runner::serial()).unwrap();
        let (par, p_snap) = shift_study(&cfg, &Runner::new(8)).unwrap();
        assert_eq!(serial, par);
        assert_eq!(s_snap, p_snap);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&par).unwrap();
        assert_eq!(a, b);
    }
}
