//! Beyond-paper ablations of the design choices DESIGN.md calls out.
//!
//! **A1 — why *this* series?** The skyscraper series looks arbitrary next
//! to the obvious "just double" progression `[1, 2, 4, 8, …]`. The
//! doubling series yields *better* latency for the same channel count (its
//! prefix sums grow faster), so why not use it? Because its fragments are
//! (almost) all even: consecutive transmission groups land on the *same*
//! loader, and a two-loader client physically cannot catch its broadcasts
//! in time. [`series_ablation`] quantifies this: for each candidate series
//! it sweeps arrival phases and counts loader conflicts and jitter events
//! under the two-loader discipline.
//!
//! **A2 — width sensitivity** lives in
//! [`crate::figures::width_tradeoff`]; here [`width_ablation`] adds the
//! buffer-vs-latency elasticity (the marginal MB per saved second of
//! latency) that §5.4's "determine a good W" discussion eyeballs.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::client::{loaders_needed, ClientTimeline};
use sb_core::series::Width;

/// A candidate fragmentation series for the ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSeries {
    /// Name used in reports.
    pub name: String,
    /// The unit sizes.
    pub units: Vec<u64>,
}

/// The doubling (power-of-two) series `[1, 2, 4, …, 2^{k-1}]`.
#[must_use]
pub fn doubling_series(k: usize) -> Vec<u64> {
    (0..k as u32).map(|i| 1u64 << i.min(62)).collect()
}

/// A "paired doubling" series `[1, 2, 2, 4, 4, 8, 8, …]` — keeps the
/// pair structure but not the parity alternation.
#[must_use]
pub fn paired_doubling_series(k: usize) -> Vec<u64> {
    (0..k)
        .map(|i| {
            if i == 0 {
                1
            } else {
                1u64 << (i.div_ceil(2)).min(62)
            }
        })
        .collect()
}

/// The Fibonacci-ish series `[1, 2, 3, 5, 8, …]` (slower growth, odd/even
/// mixing without the skyscraper's structure).
#[must_use]
pub fn fibonacci_series(k: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k);
    let (mut a, mut b) = (1u64, 2u64);
    for _ in 0..k {
        out.push(a);
        let c = a + b;
        a = b;
        b = c;
    }
    out
}

/// The candidates evaluated by the ablation.
#[must_use]
pub fn candidates(k: usize) -> Vec<CandidateSeries> {
    vec![
        CandidateSeries {
            name: "skyscraper".into(),
            units: Width::Unbounded.units(k),
        },
        CandidateSeries {
            name: "doubling".into(),
            units: doubling_series(k),
        },
        CandidateSeries {
            name: "paired-doubling".into(),
            units: paired_doubling_series(k),
        },
        CandidateSeries {
            name: "fibonacci".into(),
            units: fibonacci_series(k),
        },
    ]
}

/// What happens when a two-loader client runs against a series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesReport {
    /// The candidate's name.
    pub name: String,
    /// Access latency `D₁ = D / Σ units` in minutes, for `d` total.
    pub latency_min: f64,
    /// Arrival phases probed.
    pub phases: u64,
    /// Phases with at least one loader double-booking.
    pub phases_with_conflicts: u64,
    /// Phases with at least one late segment (jitter).
    pub phases_with_jitter: u64,
    /// Worst peak buffer over the probed phases, in slot units.
    pub worst_peak_units: u64,
    /// Largest fragment, in slot units.
    pub max_unit: u64,
    /// Smallest loader count (client receive bandwidth ÷ b) under which
    /// the series becomes usable, up to 8; `None` if 8 do not suffice.
    pub loaders_needed: Option<usize>,
}

impl SeriesReport {
    /// A series is *usable* by the paper's client iff no probed phase
    /// conflicts or starves.
    #[must_use]
    pub fn usable(&self) -> bool {
        self.phases_with_conflicts == 0 && self.phases_with_jitter == 0
    }
}

/// Probe a candidate series over `phases` arrival slots.
#[must_use]
pub fn probe_series(name: &str, units: &[u64], d: Minutes, phases: u64) -> SeriesReport {
    let mut conflicts = 0;
    let mut jitter = 0;
    let mut worst_peak = 0;
    for t0 in 0..phases {
        let tl = ClientTimeline::compute(units, t0);
        if !tl.loader_conflicts().is_empty() {
            conflicts += 1;
        }
        if !tl.is_jitter_free() {
            jitter += 1;
        }
        worst_peak = worst_peak.max(tl.peak_buffer_units());
    }
    let total: u64 = units.iter().sum();
    SeriesReport {
        name: name.into(),
        latency_min: d.value() / total as f64,
        phases,
        phases_with_conflicts: conflicts,
        phases_with_jitter: jitter,
        worst_peak_units: worst_peak,
        max_unit: *units.iter().max().expect("non-empty"),
        loaders_needed: loaders_needed(units, 8, phases.min(256)),
    }
}

/// A1: probe all candidates at a given fragment count.
#[must_use]
pub fn series_ablation(k: usize, d: Minutes, phases: u64) -> Vec<SeriesReport> {
    series_ablation_with(k, d, phases, &crate::runner::Runner::serial())
}

/// [`series_ablation`] on an explicit [`crate::runner::Runner`] —
/// candidate series probed in parallel, output identical to serial.
#[must_use]
pub fn series_ablation_with(
    k: usize,
    d: Minutes,
    phases: u64,
    runner: &crate::runner::Runner,
) -> Vec<SeriesReport> {
    let cands = candidates(k);
    runner.timed_map("ablation", &cands, |c| {
        probe_series(&c.name, &c.units, d, phases)
    })
}

/// A2: the marginal cost of latency, width to width: `(W, latency_min,
/// buffer_mb, mb_per_saved_second)` rows.
#[must_use]
pub fn width_ablation(d: Minutes, k: usize) -> Vec<(u64, f64, f64, f64)> {
    let base = crate::figures::width_tradeoff(d, k);
    let mut out = Vec::with_capacity(base.len());
    for (i, &(w, lat, buf)) in base.iter().enumerate() {
        let marginal = if i == 0 {
            0.0
        } else {
            let (_, prev_lat, prev_buf) = base[i - 1];
            let saved_sec = (prev_lat - lat) * 60.0;
            if saved_sec > 1e-12 {
                (buf - prev_buf) / saved_sec
            } else {
                f64::INFINITY
            }
        };
        out.push((w, lat, buf, marginal));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_series_is_unusable_by_two_loaders() {
        // The punchline of A1: the obvious series breaks the client.
        let reports = series_ablation(10, Minutes(120.0), 512);
        let sky = reports.iter().find(|r| r.name == "skyscraper").unwrap();
        let dbl = reports.iter().find(|r| r.name == "doubling").unwrap();
        assert!(sky.usable(), "skyscraper must be conflict- and jitter-free");
        assert!(!dbl.usable(), "doubling must conflict (all-even groups)");
        // …even though doubling has the better latency.
        assert!(dbl.latency_min < sky.latency_min);
    }

    #[test]
    fn paired_doubling_also_fails() {
        let reports = series_ablation(12, Minutes(120.0), 512);
        let pd = reports
            .iter()
            .find(|r| r.name == "paired-doubling")
            .unwrap();
        assert!(!pd.usable());
    }

    #[test]
    fn loader_counts_tell_the_bandwidth_story() {
        // Two loaders suffice only for the skyscraper series; the faster
        // series demand more client receive bandwidth — the axis the
        // follow-on literature explores.
        let reports = series_ablation(10, Minutes(120.0), 256);
        let get = |n: &str| reports.iter().find(|r| r.name == n).unwrap();
        assert_eq!(get("skyscraper").loaders_needed, Some(2));
        let dbl = get("doubling").loaders_needed;
        assert!(dbl.is_none_or(|l| l > 2), "doubling at ≤2 loaders: {dbl:?}");
    }

    #[test]
    fn skyscraper_peak_matches_effective_width() {
        let reports = series_ablation(9, Minutes(120.0), 1024);
        let sky = reports.iter().find(|r| r.name == "skyscraper").unwrap();
        assert_eq!(sky.worst_peak_units, sky.max_unit - 1);
    }

    #[test]
    fn fibonacci_growth() {
        assert_eq!(fibonacci_series(6), vec![1, 2, 3, 5, 8, 13]);
        assert_eq!(doubling_series(5), vec![1, 2, 4, 8, 16]);
        assert_eq!(paired_doubling_series(6), vec![1, 2, 2, 4, 4, 8]);
    }

    #[test]
    fn width_ablation_marginal_cost_grows() {
        let rows = width_ablation(Minutes(120.0), 40);
        // The very first step is free-ish; after that, each saved second
        // of latency costs more MB than the previous one (diminishing
        // returns — §5.4's reason to stop at W=52).
        let marginals: Vec<f64> = rows.iter().skip(1).map(|r| r.3).collect();
        assert!(marginals.windows(2).all(|w| w[1] >= w[0] * 0.99));
    }
}
