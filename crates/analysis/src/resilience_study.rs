//! The fault study: schemes under bursty loss and outages, and the
//! control plane's recovery from them.
//!
//! Two halves, one shared [`FaultScript`]:
//!
//! * **Client half** — for every scheme in the lineup, every loss
//!   condition (i.i.d. [`LossModel`] and a bursty [`GilbertElliott`]
//!   channel *with the same mean loss rate*), and every seed, a grid of
//!   client sessions is scheduled and replayed through
//!   [`sb_resilience::replay`] under each [`Degradation`] policy. The
//!   tally — stall, skipped and degraded minutes, truncated sessions —
//!   shows what each scheme's redundancy (frequent early fragments)
//!   actually buys under identical damage, and what burstiness costs at
//!   equal average loss.
//! * **Recovery half** — the same script drives [`ControlledSim`] under
//!   both [`ControlPolicy`] variants over a popularity-shift workload:
//!   a mid-run slot outage plus a drifting ranking. Static control eats
//!   both; dynamic control repairs in-flight sessions, redirects dark
//!   arrivals, and re-plans toward the new favourites.
//!
//! Cells run in parallel on the [`Runner`]; snapshots merge in grid
//! order, so the whole study is byte-identical for every thread count.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_control::{ControlConfig, ControlFaults, ControlPolicy, ControlReport, ControlledSim};
use sb_core::config::SystemConfig;
use sb_core::error::Result;
use sb_core::plan::VideoId;
use sb_metrics::{Recorder, Registry, Snapshot};
use sb_resilience::{replay, Degradation, FaultScript, GilbertElliott, ScriptedLoss};
use sb_sim::policy::ClientPolicy;
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient};
use sb_sim::{LossModel, LossProcess, RunConfig};
use sb_workload::{Catalog, Patience, PoissonArrivals, PopularityShift, ZipfPopularity};

use crate::lineup::SchemeId;
use crate::runner::Runner;

/// How a loss condition realises its mean rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Independent per-occurrence drops ([`LossModel`]).
    Iid,
    /// Gilbert–Elliott bursts at the same long-run rate
    /// ([`GilbertElliott::burst`]).
    Burst,
}

impl LossKind {
    /// Short label used in tables and metric labels.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LossKind::Iid => "iid",
            LossKind::Burst => "burst",
        }
    }
}

/// Parameters of the fault study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceStudyConfig {
    /// Server bandwidth for the client half's plans.
    pub bandwidth: Mbps,
    /// Client arrivals are spread over `[0, horizon)`.
    pub horizon: Minutes,
    /// Client sessions per cell.
    pub samples: usize,
    /// Schemes under study.
    pub schemes: Vec<SchemeId>,
    /// Mean loss rates, each realised i.i.d. *and* bursty. Must lie in
    /// `(0, 1)` and leave the bursty gap length above one cycle.
    pub loss_rates: Vec<f64>,
    /// Mean burst length (in channel occurrences) of the bursty
    /// realisation.
    pub burst_len: f64,
    /// Degradation policies each session is replayed under.
    pub policies: Vec<Degradation>,
    /// The shared fault script: its outages damage both halves.
    pub script: FaultScript,
    /// One cell per seed on both halves.
    pub seeds: Vec<u64>,
    /// Controlled-server configuration for the recovery half.
    pub control: ControlConfig,
    /// Arrival rate (requests per minute) of the recovery workload.
    pub rate: f64,
    /// Recovery-workload horizon.
    pub control_horizon: Minutes,
    /// When the recovery workload's popularity ranking rotates.
    pub shift_at: Minutes,
    /// How far it rotates.
    pub rotate: usize,
    /// Mean viewer patience (exponential).
    pub mean_patience: Minutes,
}

impl ResilienceStudyConfig {
    /// A representative default: the paper's flagship width against the
    /// competing schemes, light-to-heavy loss, and one mid-run outage of
    /// broadcast channel 0 shared by both halves.
    #[must_use]
    pub fn paper_defaults() -> Self {
        let control = ControlConfig::paper_defaults(Mbps(300.0));
        Self {
            bandwidth: Mbps(320.0),
            horizon: Minutes(200.0),
            samples: 24,
            schemes: vec![
                SchemeId::Sb(Some(52)),
                SchemeId::PbA,
                SchemeId::PpbA,
                SchemeId::Staggered,
            ],
            loss_rates: vec![0.01, 0.05, 0.2],
            burst_len: 4.0,
            policies: Degradation::all().to_vec(),
            script: FaultScript {
                outages: vec![sb_resilience::ChannelOutage {
                    channel: 0,
                    start: Minutes(60.0),
                    duration: Minutes(25.0),
                }],
                ..FaultScript::none()
            },
            seeds: vec![11, 23, 47],
            rotate: control.titles / 2,
            control,
            rate: 6.0,
            control_horizon: Minutes(400.0),
            shift_at: Minutes(150.0),
            mean_patience: Minutes(45.0),
        }
    }

    /// Check every loss condition is constructible before any cell runs.
    ///
    /// # Errors
    /// The constructor error of the first invalid [`LossModel`] or
    /// [`GilbertElliott`] condition, or the script's own
    /// [`FaultScript::validate`] failure.
    pub fn validate(&self) -> Result<()> {
        self.script.validate()?;
        for &p in &self.loss_rates {
            LossModel::new(p, 0)?;
            let _ = GilbertElliott::burst(self.burst_len, gap_for(self.burst_len, p), 1.0, 0)?;
        }
        Ok(())
    }
}

/// Mean gap length giving a bursty channel of mean burst `b` the long-run
/// loss rate `p` (with certain loss inside bursts): `p = b / (b + gap)`.
#[must_use]
pub fn gap_for(burst_len: f64, p: f64) -> f64 {
    burst_len * (1.0 - p) / p
}

/// One degradation policy's tally over a cell's sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTally {
    /// Policy label (`stall` / `skip` / `quality`).
    pub policy: String,
    /// Total stall minutes across the cell's sessions.
    pub stall_minutes: f64,
    /// Total skipped display minutes.
    pub skipped_minutes: f64,
    /// Total degraded-quality display minutes.
    pub degraded_minutes: f64,
    /// Sessions with at least one reception past the retry cap.
    pub truncated_sessions: usize,
}

/// One (scheme, loss kind, rate, seed) cell of the client half.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCell {
    /// Scheme label.
    pub scheme: String,
    /// How the loss condition realises its rate.
    pub kind: LossKind,
    /// Mean loss rate of the condition.
    pub loss_rate: f64,
    /// Arrival-phase seed.
    pub seed: u64,
    /// Sessions scheduled (the arrival grid size).
    pub sessions: usize,
    /// Mean fault-free startup latency over the cell.
    pub mean_startup_latency: f64,
    /// One tally per configured degradation policy, in config order.
    pub tallies: Vec<PolicyTally>,
}

/// Both control policies' reports for one recovery-workload seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCell {
    /// Workload seed.
    pub seed: u64,
    /// The run with the hot set frozen.
    pub static_report: ControlReport,
    /// The run with online reallocation.
    pub dynamic_report: ControlReport,
}

/// The whole fault study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceStudy {
    /// The configuration that produced this study.
    pub config: ResilienceStudyConfig,
    /// Client-half cells in grid order (scheme × kind × rate × seed);
    /// infeasible (scheme, bandwidth) cells are omitted.
    pub cells: Vec<ResilienceCell>,
    /// Recovery-half cells in seed order.
    pub recovery: Vec<RecoveryCell>,
    /// Mean served latency under static control, across seeds.
    pub static_mean_latency: Minutes,
    /// Same under dynamic control.
    pub dynamic_mean_latency: Minutes,
}

/// Forwards to a [`Registry`] with fixed extra labels appended to every
/// series, keeping cells distinct after the merge.
struct Labeled<'a> {
    inner: &'a mut Registry,
    extra: Vec<(String, String)>,
}

impl Recorder for Labeled<'_> {
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        let mut l = labels.to_vec();
        l.extend(self.extra.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        self.inner.incr(name, &l, by);
    }

    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut l = labels.to_vec();
        l.extend(self.extra.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        self.inner.gauge_max(name, &l, v);
    }

    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut l = labels.to_vec();
        l.extend(self.extra.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        self.inner.observe(name, &l, v);
    }
}

/// The client model each scheme's receivers follow in this study.
fn model_for(id: SchemeId) -> Box<dyn ClientModel> {
    match id {
        SchemeId::PbA | SchemeId::PbB => Box::new(ClientPolicy::PbEarliest),
        SchemeId::PpbA | SchemeId::PpbB => Box::new(PausingClient),
        SchemeId::Harmonic => Box::new(RecordingClient::default()),
        _ => Box::new(ClientPolicy::LatestFeasible),
    }
}

/// Deterministic arrival-phase fraction in `(0, 1)` from a seed
/// (splitmix-style scramble; the same rule [`crate::crosscheck`] uses).
fn phase_of(seed: u64) -> f64 {
    if seed == 0 {
        return 0.31;
    }
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One grid point of the client half.
type GridPoint = (SchemeId, LossKind, f64, u64);

fn run_cell(cfg: &ResilienceStudyConfig, point: &GridPoint) -> Option<(ResilienceCell, Snapshot)> {
    let &(id, kind, rate, seed) = point;
    let sys = SystemConfig::paper_defaults(cfg.bandwidth);
    let plan = id.build().plan(&sys).ok()?;
    match kind {
        LossKind::Iid => {
            let base = LossModel::new(rate, seed).expect("config validated");
            run_sessions(cfg, point, &plan, &sys, &base)
        }
        LossKind::Burst => {
            let base =
                GilbertElliott::burst(cfg.burst_len, gap_for(cfg.burst_len, rate), 1.0, seed)
                    .expect("config validated");
            run_sessions(cfg, point, &plan, &sys, &base)
        }
    }
}

fn run_sessions<L: LossProcess>(
    cfg: &ResilienceStudyConfig,
    point: &GridPoint,
    plan: &sb_core::plan::ChannelPlan,
    sys: &SystemConfig,
    base: &L,
) -> Option<(ResilienceCell, Snapshot)> {
    let &(id, kind, rate, seed) = point;
    let losses = ScriptedLoss::compile(plan, &cfg.script, base);
    let model = model_for(id);
    let phase = phase_of(seed);

    let mut reg = Registry::new();
    let mut rec = Labeled {
        inner: &mut reg,
        extra: vec![
            ("scheme".to_string(), id.label()),
            ("kind".to_string(), kind.label().to_string()),
        ],
    };

    let mut tallies: Vec<PolicyTally> = cfg
        .policies
        .iter()
        .map(|p| PolicyTally {
            policy: p.label().to_string(),
            stall_minutes: 0.0,
            skipped_minutes: 0.0,
            degraded_minutes: 0.0,
            truncated_sessions: 0,
        })
        .collect();
    let mut latency_sum = 0.0f64;
    let mut sessions = 0usize;

    for i in 0..cfg.samples {
        let arrival = Minutes(cfg.horizon.value() * (i as f64 + phase) / cfg.samples as f64);
        let trace = model
            .session(plan, VideoId(0), arrival, sys.display_rate)
            .ok()?;
        sessions += 1;
        latency_sum += trace.startup_latency().value();
        for (p, tally) in cfg.policies.iter().zip(tallies.iter_mut()) {
            let rep = replay(plan, &trace, &losses, *p, &mut rec);
            tally.stall_minutes += rep.total_stall().value();
            tally.skipped_minutes += rep.skipped_minutes().value();
            tally.degraded_minutes += rep.degraded_minutes().value();
            tally.truncated_sessions += usize::from(!rep.truncated.is_empty());
        }
    }

    Some((
        ResilienceCell {
            scheme: id.label(),
            kind,
            loss_rate: rate,
            seed,
            sessions,
            mean_startup_latency: latency_sum / sessions.max(1) as f64,
            tallies,
        },
        reg.snapshot(),
    ))
}

/// Run the study. Both halves' cells run in parallel on `runner`; the
/// study and the merged snapshot are byte-identical for every thread
/// count.
///
/// # Errors
/// An invalid configuration ([`ResilienceStudyConfig::validate`]), a
/// control configuration the bandwidth cannot sustain, or a script whose
/// outages name slots the control half does not have.
pub fn resilience_study(
    cfg: &ResilienceStudyConfig,
    runner: &Runner,
) -> Result<(ResilienceStudy, Snapshot)> {
    cfg.validate()?;

    let mut grid: Vec<GridPoint> = Vec::new();
    for &id in &cfg.schemes {
        for kind in [LossKind::Iid, LossKind::Burst] {
            for &rate in &cfg.loss_rates {
                for &seed in &cfg.seeds {
                    grid.push((id, kind, rate, seed));
                }
            }
        }
    }
    let cells: Vec<Option<(ResilienceCell, Snapshot)>> =
        runner.timed_map("resilience-grid", &grid, |p| run_cell(cfg, p));

    let catalog = Catalog::paper_defaults(cfg.control.titles);
    let sim = ControlledSim::new(cfg.control, &catalog)?;
    let popularity = ZipfPopularity::paper(cfg.control.titles);
    let recovery: Vec<Result<(RecoveryCell, Snapshot)>> =
        runner.timed_map("resilience-recovery", &cfg.seeds, |&seed| {
            let requests = PopularityShift {
                arrivals: PoissonArrivals::new(cfg.rate, seed)
                    .with_patience(Patience::Exponential(cfg.mean_patience)),
                shift_at: cfg.shift_at,
                rotate: cfg.rotate,
            }
            .generate(&popularity, cfg.control_horizon);
            let mut reg = Registry::new();
            let mut run = |policy: ControlPolicy| {
                sim.execute(
                    policy,
                    RunConfig::new(&requests)
                        .agenda(runner.agenda())
                        .recorder(&mut Labeled {
                            inner: &mut reg,
                            extra: vec![("policy".to_string(), policy.to_string())],
                        })
                        .faults(ControlFaults {
                            script: &cfg.script,
                            degradation: Degradation::Stall,
                        }),
                )
                .map(|o| o.summary)
            };
            let static_report = run(ControlPolicy::Static)?;
            let dynamic_report = run(ControlPolicy::Dynamic)?;
            Ok((
                RecoveryCell {
                    seed,
                    static_report,
                    dynamic_report,
                },
                reg.snapshot(),
            ))
        });

    let mut snapshot = Snapshot::default();
    let mut out_cells = Vec::new();
    for cell in cells.into_iter().flatten() {
        snapshot.merge(&cell.1);
        out_cells.push(cell.0);
    }
    let mut out_recovery = Vec::new();
    for r in recovery {
        let (cell, snap) = r?;
        snapshot.merge(&snap);
        out_recovery.push(cell);
    }

    let n = out_recovery.len().max(1) as f64;
    let static_mean_latency = Minutes(
        out_recovery
            .iter()
            .map(|c| c.static_report.mean_latency.value())
            .sum::<f64>()
            / n,
    );
    let dynamic_mean_latency = Minutes(
        out_recovery
            .iter()
            .map(|c| c.dynamic_report.mean_latency.value())
            .sum::<f64>()
            / n,
    );

    Ok((
        ResilienceStudy {
            config: cfg.clone(),
            cells: out_cells,
            recovery: out_recovery,
            static_mean_latency,
            dynamic_mean_latency,
        },
        snapshot,
    ))
}

/// Plain-text rendering of a [`ResilienceStudy`] for the CLI: the client
/// half aggregated across seeds, then the recovery half per seed.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn render_resilience_study(study: &ResilienceStudy) -> String {
    let cfg = &study.config;
    let mut out = String::new();
    out.push_str(&format!(
        "fault study: {} Mb/s, {} sessions/cell over {} min, burst len {}, {} outage(s)\n",
        cfg.bandwidth.value(),
        cfg.samples,
        cfg.horizon.value(),
        cfg.burst_len,
        cfg.script.outages.len(),
    ));
    out.push_str(
        "scheme     loss   rate   policy   stall-min  skipped  degraded  truncated  sessions\n",
    );
    // Aggregate cells over seeds, preserving grid order.
    let mut keys: Vec<(String, LossKind, String)> = Vec::new();
    for c in &study.cells {
        let key = (c.scheme.clone(), c.kind, format!("{}", c.loss_rate));
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    for (scheme, kind, rate) in &keys {
        let group: Vec<&ResilienceCell> = study
            .cells
            .iter()
            .filter(|c| {
                c.scheme == *scheme && c.kind == *kind && format!("{}", c.loss_rate) == *rate
            })
            .collect();
        let sessions: usize = group.iter().map(|c| c.sessions).sum();
        for (pi, policy) in cfg.policies.iter().enumerate() {
            let sum = |f: fn(&PolicyTally) -> f64| -> f64 {
                group.iter().map(|c| f(&c.tallies[pi])).sum()
            };
            let truncated: usize = group.iter().map(|c| c.tallies[pi].truncated_sessions).sum();
            out.push_str(&format!(
                "{:<10} {:<6} {:<6} {:<8} {:>9.2} {:>8.2} {:>9.2} {:>10} {:>9}\n",
                scheme,
                kind.label(),
                rate,
                policy.label(),
                sum(|t| t.stall_minutes),
                sum(|t| t.skipped_minutes),
                sum(|t| t.degraded_minutes),
                truncated,
                sessions,
            ));
        }
    }
    out.push_str("\nrecovery under the same script (+ popularity shift):\n");
    out.push_str("seed   policy    served  defected  redirected  repaired  retries  mean-lat\n");
    for c in &study.recovery {
        for (name, r) in [("static", &c.static_report), ("dynamic", &c.dynamic_report)] {
            out.push_str(&format!(
                "{:<6} {:<8} {:>7} {:>9} {:>11} {:>9} {:>8} {:>9.3}\n",
                c.seed,
                name,
                r.served_broadcast + r.served_pool,
                r.defected,
                r.resilience.redirected,
                r.resilience.repaired_sessions,
                r.resilience.retries,
                r.mean_latency.value(),
            ));
        }
    }
    out.push_str(&format!(
        "mean latency: static {:.3} min, dynamic {:.3} min\n",
        study.static_mean_latency.value(),
        study.dynamic_mean_latency.value()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ResilienceStudyConfig {
        ResilienceStudyConfig {
            samples: 8,
            loss_rates: vec![0.05],
            seeds: vec![11, 23],
            control_horizon: Minutes(300.0),
            shift_at: Minutes(120.0),
            ..ResilienceStudyConfig::paper_defaults()
        }
    }

    #[test]
    fn study_runs_and_damage_grows_with_burstiness_kept_honest() {
        let (study, snap) = resilience_study(&quick_config(), &Runner::serial()).unwrap();
        assert!(!study.cells.is_empty());
        assert_eq!(study.recovery.len(), 2);
        // The script's outage actually reached the control half.
        assert!(study
            .recovery
            .iter()
            .all(|c| c.static_report.resilience.outages == 1));
        // Every configured policy shows up in every cell.
        for c in &study.cells {
            assert_eq!(c.tallies.len(), 3);
        }
        let txt = render_resilience_study(&study);
        assert!(txt.contains("recovery"));
        assert!(snap.counter_total("resilience_outages_total") > 0);
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let cfg = quick_config();
        let (serial, s_snap) = resilience_study(&cfg, &Runner::serial()).unwrap();
        let (par, p_snap) = resilience_study(&cfg, &Runner::new(4)).unwrap();
        assert_eq!(serial, par);
        assert_eq!(s_snap, p_snap);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&par).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_loss_rates_are_rejected_up_front() {
        let cfg = ResilienceStudyConfig {
            loss_rates: vec![1.5],
            ..ResilienceStudyConfig::paper_defaults()
        };
        assert!(resilience_study(&cfg, &Runner::serial()).is_err());
    }
}
