//! The metropolitan scenario study: spatial density, regional shards,
//! and temporal stress, measured per region class.
//!
//! The paper pitches Skyscraper Broadcasting for *metropolitan* VoD, yet
//! every other study here drives a spatially uniform workload — one Zipf
//! catalog, one Poisson stream, shards split by a hash with no
//! geography. This study runs the [`sb_workload::scenario`] geometry
//! end-to-end instead: each preset (urban/rural/remote) generates a
//! [`MetroScenario`] — clustered users on a km grid, per-region demand
//! shares, access classes, region-local catalogs with a shared hot
//! head — and the study measures, per preset:
//!
//! * **scheme cells** — SB vs the baselines (PB, staggered, HB) over the
//!   scenario stream, executed region-sharded: `shards =
//!   regions`, with the scenario's owning-shard table in the
//!   [`RunConfig::partition`] slot so each shard owns a region's catalog
//!   slice and arrival stream. Latency and *would-be defection* (startup
//!   latency exceeding the viewer's drawn patience — broadcast delivery
//!   never actually queues) are tabulated per access class, and the
//!   per-shard agenda peaks expose the asymmetric regional load.
//! * **a flash-crowd cell** — the scenario's premiere stream (a cold
//!   local title jumps to Zipf rank 1 mid-run via the
//!   [`sb_workload::PopularityShift`] rotation) through the control
//!   plane, static vs dynamic allocation. Dynamic swaps the premiere
//!   into a broadcast slot; static leaves it to the batching pool.
//! * **an outage cell** — a correlated regional outage
//!   ([`FaultScript::correlated_outages`] over the busiest region's
//!   broadcast slots) against the same stream, quiet vs faulted.
//! * **a diurnal cell** — the diurnal × density cross product: the same
//!   scenario under the evening-surge profile vs the flat profile.
//!
//! Determinism contract (pinned by tests and `scripts/verify.sh`): the
//! report and snapshot are byte-identical for every `--shards`,
//! `--threads` and `--agenda` the study is invoked with. Scheme cells
//! fix their own shard count (the region count — a property of the
//! scenario, never of the invocation); control cells run unsharded; a
//! flagship pass re-runs the first scheme cell at the *caller's* shard,
//! thread and agenda knobs and asserts it folds to the identical bytes,
//! contributing only shard-invariant totals.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_control::{ControlConfig, ControlFaults, ControlPolicy, ControlReport, ControlledSim};
use sb_core::config::SystemConfig;
use sb_core::error::Result;
use sb_core::plan::{ChannelPlan, VideoId};
use sb_metrics::Snapshot;
use sb_resilience::{Degradation, FaultScript};
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient};
use sb_sim::{RunConfig, SessionSummary, TraceSink};
use sb_workload::{
    to_workload, AccessClass, Catalog, FlashCrowd, MetroScenario, ScenarioPreset, ScenarioRequest,
    ScenarioWorkload,
};

use crate::lineup::SchemeId;
use crate::runner::Runner;

/// The client model each scheme's receivers follow (the same map the
/// resilience and throughput studies use).
pub(crate) fn model_for(id: SchemeId) -> Box<dyn ClientModel> {
    match id {
        SchemeId::PbA | SchemeId::PbB => Box::new(ClientPolicy::PbEarliest),
        SchemeId::PpbA | SchemeId::PpbB => Box::new(PausingClient),
        SchemeId::Harmonic => Box::new(RecordingClient::default()),
        _ => Box::new(ClientPolicy::LatestFeasible),
    }
}

/// Parameters of the scenario study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioStudyConfig {
    /// The geometry presets measured, in report order.
    pub presets: Vec<ScenarioPreset>,
    /// The scheme lineup per preset (SB first: the diurnal cell and the
    /// flagship pass reuse the first entry).
    pub schemes: Vec<SchemeId>,
    /// Broadcast bandwidth *per catalog title*, Mb/s. The server is
    /// sized `per_video_mbps × titles`, so every preset's catalog gets
    /// the same per-title budget whatever its region count.
    pub per_video_mbps: f64,
    /// Metro-wide arrival rate, requests per minute, split across
    /// regions by demand share.
    pub rate: f64,
    /// Workload horizon.
    pub horizon: Minutes,
    /// Mean exponential viewer patience.
    pub mean_patience: Minutes,
    /// Server bandwidth of the control-plane cells (flash, outage).
    pub control_bandwidth: Mbps,
    /// When the premiere drops in the flash-crowd cell.
    pub flash_at: Minutes,
    /// Rate multiplier of the premiere evening relative to `rate`.
    pub flash_rate_boost: f64,
    /// When the correlated regional outage begins.
    pub outage_start: Minutes,
    /// How long the outage lasts.
    pub outage_duration: Minutes,
    /// Seed for placement, demand and arrival draws.
    pub seed: u64,
}

impl ScenarioStudyConfig {
    /// The full metro grid: all three presets, SB at the flagship width
    /// against PB:b, staggered and HB over a 600-minute evening.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            presets: vec![
                ScenarioPreset::Urban,
                ScenarioPreset::Rural,
                ScenarioPreset::Remote,
            ],
            schemes: vec![
                SchemeId::Sb(Some(52)),
                SchemeId::PbB,
                SchemeId::Staggered,
                SchemeId::Harmonic,
            ],
            per_video_mbps: 30.0,
            rate: 6.0,
            horizon: Minutes(600.0),
            mean_patience: Minutes(45.0),
            control_bandwidth: Mbps(300.0),
            flash_at: Minutes(150.0),
            flash_rate_boost: 2.0,
            outage_start: Minutes(200.0),
            outage_duration: Minutes(60.0),
            seed: 17,
        }
    }

    /// The same shape at smoke scale for CI: shorter horizon, fewer
    /// arrivals, premiere and outage pulled forward proportionally.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            rate: 4.0,
            horizon: Minutes(240.0),
            flash_at: Minutes(80.0),
            outage_start: Minutes(90.0),
            outage_duration: Minutes(40.0),
            ..Self::paper_defaults()
        }
    }
}

/// One region's row of a preset's geometry table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRow {
    /// Region id.
    pub id: usize,
    /// Users attached (cluster + background).
    pub users: usize,
    /// Normalized demand share.
    pub demand_share: f64,
    /// Access-class label (`fiber` / `cable` / `dsl`).
    pub access: String,
    /// Downlink of the class, Mb/s.
    pub downlink_mbps: f64,
}

/// Latency/defection aggregates for one access class under one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRow {
    /// Access-class label.
    pub access: String,
    /// Regions of this class in the preset.
    pub regions: usize,
    /// Sessions originating from the class's regions.
    pub sessions: usize,
    /// Sessions whose startup latency exceeded the viewer's patience.
    pub defected: usize,
    /// Mean startup latency over the class's sessions.
    pub mean_latency: Minutes,
    /// 95th-percentile startup latency (nearest rank).
    pub p95_latency: Minutes,
}

/// One scheme's region-sharded run over the scenario stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeCell {
    /// The scheme.
    pub scheme: SchemeId,
    /// Its display label.
    pub label: String,
    /// The population fold (shard-invariant by construction).
    pub overall: SessionSummary,
    /// Would-be defections over the whole metro.
    pub defected: usize,
    /// Per-access-class latency/defection table, in first-appearance
    /// region order.
    pub classes: Vec<ClassRow>,
    /// Each region shard's agenda high-water mark, in region order —
    /// asymmetric exactly as the demand shares are.
    pub shard_peak_agenda: Vec<u64>,
}

/// The flash-crowd cell: static vs dynamic allocation over the premiere
/// stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCell {
    /// The region hosting the premiere (the busiest by demand share).
    pub region: usize,
    /// Metro arrival rate of the premiere evening.
    pub rate: f64,
    /// The static-allocation run.
    pub static_report: ControlReport,
    /// The dynamic-allocation run.
    pub dynamic_report: ControlReport,
}

/// The correlated-outage cell: the busiest region's broadcast slots go
/// dark mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageCell {
    /// The region whose slots fail.
    pub region: usize,
    /// The broadcast slots taken out (the region's round-robin share).
    pub slots: Vec<usize>,
    /// Dynamic allocation with no faults, for reference.
    pub quiet_report: ControlReport,
    /// Dynamic allocation under the outage script.
    pub faulted_report: ControlReport,
}

/// The diurnal × density cell: the first scheme under the evening-surge
/// profile vs the flat profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCell {
    /// Sessions of the diurnal stream (its own Poisson counts).
    pub sessions: usize,
    /// Would-be defections under the diurnal profile.
    pub defected: usize,
    /// Mean startup latency under the diurnal profile.
    pub mean_latency: Minutes,
    /// 95th-percentile startup latency under the diurnal profile.
    pub p95_latency: Minutes,
}

/// Everything measured for one preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetReport {
    /// Preset label (`urban` / `rural` / `remote`).
    pub preset: String,
    /// Catalog size: shared hot head plus every region slice.
    pub titles: usize,
    /// The geometry table, in region order.
    pub regions: Vec<RegionRow>,
    /// One region-sharded cell per scheme, in lineup order.
    pub schemes: Vec<SchemeCell>,
    /// The premiere flash crowd, static vs dynamic.
    pub flash: FlashCell,
    /// The correlated regional outage, quiet vs faulted.
    pub outage: OutageCell,
    /// The diurnal × density cross product.
    pub diurnal: DiurnalCell,
}

/// The whole study. Byte-identical for every `--shards`, `--threads`
/// and `--agenda` the invocation used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The configuration that produced this report.
    pub config: ScenarioStudyConfig,
    /// One report per preset, in config order.
    pub presets: Vec<PresetReport>,
    /// Sessions in the flagship pass (the first preset's first scheme).
    pub total_sessions: usize,
    /// Events fired in the flagship pass, summed across its shards.
    pub total_events_fired: u64,
}

/// Streaming per-class latency/defection fold over the trace stream.
///
/// Traces arrive in global engine order, which for a time-sorted request
/// slice equals slice order on both the serial and the sharded path (the
/// ordered-replay merge reconstructs it) — so the `cursor`-indexed zip
/// against the request metadata is shard- and thread-invariant.
struct DefectionFold<'a> {
    /// `(class index, patience minutes)` per request, in slice order.
    meta: &'a [(usize, f64)],
    cursor: usize,
    sessions: Vec<usize>,
    defected: Vec<usize>,
    latency_sum: Vec<f64>,
    latencies: Vec<Vec<f64>>,
}

impl<'a> DefectionFold<'a> {
    fn new(meta: &'a [(usize, f64)], classes: usize) -> Self {
        Self {
            meta,
            cursor: 0,
            sessions: vec![0; classes],
            defected: vec![0; classes],
            latency_sum: vec![0.0; classes],
            latencies: vec![Vec::new(); classes],
        }
    }

    fn rows(&self, class_labels: &[(AccessClass, usize)]) -> Vec<ClassRow> {
        class_labels
            .iter()
            .enumerate()
            .map(|(c, &(access, regions))| {
                let mut sorted = self.latencies[c].clone();
                sorted.sort_by(f64::total_cmp);
                let p95 = if sorted.is_empty() {
                    0.0
                } else {
                    sorted[((sorted.len() as f64 - 1.0) * 0.95).round() as usize]
                };
                ClassRow {
                    access: access.name().to_string(),
                    regions,
                    sessions: self.sessions[c],
                    defected: self.defected[c],
                    mean_latency: Minutes(if self.sessions[c] > 0 {
                        self.latency_sum[c] / self.sessions[c] as f64
                    } else {
                        0.0
                    }),
                    p95_latency: Minutes(p95),
                }
            })
            .collect()
    }

    fn total_defected(&self) -> usize {
        self.defected.iter().sum()
    }
}

impl TraceSink for DefectionFold<'_> {
    fn accept(&mut self, trace: &sb_sim::trace::SessionTrace) {
        let (class, patience) = self.meta[self.cursor];
        self.cursor += 1;
        let latency = trace.startup_latency().value();
        self.sessions[class] += 1;
        self.latency_sum[class] += latency;
        self.latencies[class].push(latency);
        if latency > patience {
            self.defected[class] += 1;
        }
    }
}

/// Per-preset inputs prepared (and validated) before the parallel pass.
struct PresetPrep {
    scenario: MetroScenario,
    sys: SystemConfig,
    plans: Vec<(SchemeId, ChannelPlan)>,
}

/// Distinct access classes of a scenario in first-appearance region
/// order, each with its region count, plus the region → class index map.
fn class_layout(scenario: &MetroScenario) -> (Vec<(AccessClass, usize)>, Vec<usize>) {
    let mut classes: Vec<(AccessClass, usize)> = Vec::new();
    let mut of_region = Vec::with_capacity(scenario.regions.len());
    for r in &scenario.regions {
        let idx = match classes.iter().position(|&(c, _)| c == r.access) {
            Some(i) => {
                classes[i].1 += 1;
                i
            }
            None => {
                classes.push((r.access, 1));
                classes.len() - 1
            }
        };
        of_region.push(idx);
    }
    (classes, of_region)
}

/// The busiest region: greatest demand share, lowest id on ties.
fn busiest_region(scenario: &MetroScenario) -> usize {
    let mut best = 0usize;
    for r in &scenario.regions {
        if r.demand_share > scenario.regions[best].demand_share {
            best = r.id;
        }
    }
    best
}

/// One region-sharded scheme run: execute the scenario stream with the
/// owning-shard table, folding per-class latency/defection.
fn scheme_cell(
    (scheme, plan): (SchemeId, &ChannelPlan),
    sys: &SystemConfig,
    scenario: &MetroScenario,
    reqs: &[ScenarioRequest],
    meta: &[(usize, f64)],
    classes: &[(AccessClass, usize)],
    knobs: (usize, usize, sb_sim::AgendaKind),
) -> (SchemeCell, SessionSummary) {
    let (shards, threads, agenda) = knobs;
    let sim_reqs: Vec<Request> = reqs
        .iter()
        .map(|r| Request {
            at: r.at,
            video: VideoId(r.video),
        })
        .collect();
    let map = scenario.shard_map(shards);
    let mut fold = DefectionFold::new(meta, classes.len());
    let model = model_for(scheme);
    let sim = SystemSim::new(plan, sys.display_rate, &*model);
    let out = sim
        .execute(
            RunConfig::new(&sim_reqs)
                .shards(shards)
                .threads(threads)
                .agenda(agenda)
                .partition(&map)
                .sink(&mut fold),
        )
        .expect("the scenario stream names only catalog titles");
    let cell = SchemeCell {
        scheme,
        label: scheme.label(),
        overall: out.fold.clone(),
        defected: fold.total_defected(),
        classes: fold.rows(classes),
        shard_peak_agenda: out.shard_peak_agenda,
    };
    (cell, out.fold)
}

/// Run the study. Presets run in parallel on `runner`; every scheme cell
/// fixes its shard count to the scenario's region count, and a flagship
/// pass re-runs the first cell at `flagship_shards` with the runner's
/// thread pool and agenda, asserting it folds to identical bytes. The
/// report and snapshot are byte-identical for every `flagship_shards`,
/// thread count and agenda backend.
///
/// # Errors
/// Returns a planning error when `per_video_mbps` cannot sustain a
/// scheme in the lineup, or a control-sizing error for the flash/outage
/// cells.
///
/// # Panics
/// Panics if the flagship pass folds different bytes than its preset
/// cell — a determinism violation in `sim::shard`, never a
/// configuration problem.
pub fn scenario_study(
    cfg: &ScenarioStudyConfig,
    flagship_shards: usize,
    runner: &Runner,
) -> Result<(ScenarioReport, Snapshot)> {
    // Validate everything fallible up front, outside the parallel pass.
    let mut preps = Vec::with_capacity(cfg.presets.len());
    for (pi, &preset) in cfg.presets.iter().enumerate() {
        let scenario = MetroScenario::generate(&preset.config(cfg.seed ^ (pi as u64) << 32));
        let titles = scenario.titles();
        let sys = SystemConfig {
            num_videos: titles,
            ..SystemConfig::paper_defaults(Mbps(cfg.per_video_mbps * titles as f64))
        };
        let mut plans = Vec::with_capacity(cfg.schemes.len());
        for &scheme in &cfg.schemes {
            plans.push((scheme, scheme.build().plan(&sys)?));
        }
        preps.push(PresetPrep {
            scenario,
            sys,
            plans,
        });
    }
    let control = ControlConfig::paper_defaults(cfg.control_bandwidth);
    let catalog = Catalog::paper_defaults(control.titles);
    let csim = ControlledSim::new(control, &catalog)?;

    let cells: Vec<(PresetReport, SessionSummary)> =
        runner.timed_map("scenario-presets", &preps, |prep| {
            let scenario = &prep.scenario;
            let regions = scenario.regions.len();
            let (classes, class_of_region) = class_layout(scenario);
            let flat = ScenarioWorkload {
                rate_per_minute: cfg.rate,
                horizon: cfg.horizon,
                mean_patience: cfg.mean_patience,
                diurnal: false,
                flash: None,
                seed: cfg.seed,
            };
            let reqs = flat.generate(scenario);
            let meta: Vec<(usize, f64)> = reqs
                .iter()
                .map(|r| (class_of_region[r.region], r.patience.value()))
                .collect();

            // Scheme cells, region-sharded: shards = regions, serial
            // inside the cell (the runner parallelizes across presets).
            let mut scheme_cells = Vec::with_capacity(prep.plans.len());
            let mut first_fold = None;
            for (scheme, plan) in &prep.plans {
                let (cell, fold) = scheme_cell(
                    (*scheme, plan),
                    &prep.sys,
                    scenario,
                    &reqs,
                    &meta,
                    &classes,
                    (regions, 1, runner.agenda()),
                );
                if first_fold.is_none() {
                    first_fold = Some(fold);
                }
                scheme_cells.push(cell);
            }

            // Flash crowd: the premiere evening through the control
            // plane, static vs dynamic over the identical stream.
            let hot = busiest_region(scenario);
            let premiere = ScenarioWorkload {
                rate_per_minute: cfg.rate * cfg.flash_rate_boost,
                flash: Some(FlashCrowd {
                    at: cfg.flash_at,
                    region: hot,
                }),
                ..flat
            };
            let flash_reqs = to_workload(&premiere.generate(scenario));
            let run_control = |policy, faults: Option<&FaultScript>, reqs| {
                let base = RunConfig::new(reqs).agenda(runner.agenda());
                match faults {
                    Some(script) => csim
                        .execute(
                            policy,
                            base.faults(ControlFaults {
                                script,
                                degradation: Degradation::Stall,
                            }),
                        )
                        .expect("validated control cell"),
                    None => csim.execute(policy, base).expect("validated control cell"),
                }
                .summary
            };
            let flash = FlashCell {
                region: hot,
                rate: cfg.rate * cfg.flash_rate_boost,
                static_report: run_control(ControlPolicy::Static, None, &flash_reqs),
                dynamic_report: run_control(ControlPolicy::Dynamic, None, &flash_reqs),
            };

            // Correlated regional outage: the busiest region's broadcast
            // slots go dark; dynamic allocation quiet vs faulted.
            let slots = scenario.region_slots(hot, control.hot_slots);
            let script =
                FaultScript::correlated_outages(&slots, cfg.outage_start, cfg.outage_duration);
            let plain_reqs = to_workload(&reqs);
            let outage = OutageCell {
                region: hot,
                slots,
                quiet_report: run_control(ControlPolicy::Dynamic, None, &plain_reqs),
                faulted_report: run_control(ControlPolicy::Dynamic, Some(&script), &plain_reqs),
            };

            // Diurnal × density: the first scheme under the evening
            // surge, same geometry.
            let surge = ScenarioWorkload {
                diurnal: true,
                ..flat
            };
            let surge_reqs = surge.generate(scenario);
            let surge_meta: Vec<(usize, f64)> = surge_reqs
                .iter()
                .map(|r| (class_of_region[r.region], r.patience.value()))
                .collect();
            let (surge_cell, _) = scheme_cell(
                (prep.plans[0].0, &prep.plans[0].1),
                &prep.sys,
                scenario,
                &surge_reqs,
                &surge_meta,
                &classes,
                (regions, 1, runner.agenda()),
            );
            let diurnal = DiurnalCell {
                sessions: surge_cell.overall.sessions,
                defected: surge_cell.defected,
                mean_latency: surge_cell.overall.mean_latency,
                p95_latency: surge_cell.overall.p95_latency,
            };

            let report = PresetReport {
                preset: scenario.config.preset.name().to_string(),
                titles: scenario.titles(),
                regions: scenario
                    .regions
                    .iter()
                    .map(|r| RegionRow {
                        id: r.id,
                        users: r.users,
                        demand_share: r.demand_share,
                        access: r.access.name().to_string(),
                        downlink_mbps: r.access.downlink().value(),
                    })
                    .collect(),
                schemes: scheme_cells,
                flash,
                outage,
                diurnal,
            };
            (report, first_fold.expect("the lineup is non-empty"))
        });

    // The flagship pass: the first preset's first scheme again, at the
    // caller's shard count, thread pool and agenda. Only shard-invariant
    // totals enter the report; the fold must match the cell's bytes.
    let prep = &preps[0];
    let (classes, class_of_region) = class_layout(&prep.scenario);
    let reqs = ScenarioWorkload {
        rate_per_minute: cfg.rate,
        horizon: cfg.horizon,
        mean_patience: cfg.mean_patience,
        diurnal: false,
        flash: None,
        seed: cfg.seed,
    }
    .generate(&prep.scenario);
    let meta: Vec<(usize, f64)> = reqs
        .iter()
        .map(|r| (class_of_region[r.region], r.patience.value()))
        .collect();
    let sim_reqs: Vec<Request> = reqs
        .iter()
        .map(|r| Request {
            at: r.at,
            video: VideoId(r.video),
        })
        .collect();
    let map = prep.scenario.shard_map(flagship_shards);
    let mut fold = DefectionFold::new(&meta, classes.len());
    let model = model_for(prep.plans[0].0);
    let sim = SystemSim::new(&prep.plans[0].1, prep.sys.display_rate, &*model);
    let flagship = sim
        .execute(
            RunConfig::new(&sim_reqs)
                .shards(flagship_shards)
                .threads(runner.threads())
                .agenda(runner.agenda())
                .partition(&map)
                .sink(&mut fold),
        )
        .expect("the scenario stream names only catalog titles");

    let mut out = Vec::with_capacity(cells.len());
    let mut first_fold = None;
    for (report, cell_fold) in cells {
        if first_fold.is_none() {
            first_fold = Some(cell_fold);
        }
        out.push(report);
    }
    let cell_fold = first_fold.expect("the preset list is non-empty");
    assert_eq!(
        serde_json::to_string(&cell_fold).expect("summaries serialize"),
        serde_json::to_string(&flagship.fold).expect("summaries serialize"),
        "the flagship pass folded a different population than its region-sharded \
         cell — sim::shard determinism is broken",
    );
    assert_eq!(
        out[0].schemes[0].classes,
        fold.rows(&classes),
        "the flagship pass tabulated different class rows than its cell",
    );

    let report = ScenarioReport {
        config: cfg.clone(),
        presets: out,
        total_sessions: flagship.fold.sessions,
        total_events_fired: flagship.stats.fired,
    };
    Ok((report, flagship.snapshot))
}

/// Plain-text rendering of a [`ScenarioReport`] for the CLI.
#[must_use]
pub fn render_scenario(report: &ScenarioReport) -> String {
    let cfg = &report.config;
    let mut out = String::new();
    out.push_str(&format!(
        "scenario study: rate {}/min over {} min, patience {} min, {} Mb/s per title\n",
        cfg.rate,
        cfg.horizon.value(),
        cfg.mean_patience.value(),
        cfg.per_video_mbps,
    ));
    for p in &report.presets {
        out.push_str(&format!(
            "\npreset {} ({} titles, {} regions)\n",
            p.preset,
            p.titles,
            p.regions.len()
        ));
        out.push_str("region  users  share   access  downlink\n");
        for r in &p.regions {
            out.push_str(&format!(
                "r{:<6} {:>5} {:>6.3} {:>8} {:>6} Mb/s\n",
                r.id, r.users, r.demand_share, r.access, r.downlink_mbps,
            ));
        }
        out.push_str("scheme        class  regions  sessions  defected  mean-lat  p95-lat\n");
        for s in &p.schemes {
            for c in &s.classes {
                out.push_str(&format!(
                    "{:<13} {:<6} {:>7} {:>9} {:>9} {:>9.3} {:>8.3}\n",
                    s.label,
                    c.access,
                    c.regions,
                    c.sessions,
                    c.defected,
                    c.mean_latency.value(),
                    c.p95_latency.value(),
                ));
            }
            let agenda = s
                .shard_peak_agenda
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{:<13} per-region agenda peaks: {agenda}\n",
                s.label
            ));
        }
        out.push_str(&format!(
            "flash crowd (region {} at rate {}/min): static {:.3} min / {} defected, \
             dynamic {:.3} min / {} defected\n",
            p.flash.region,
            p.flash.rate,
            p.flash.static_report.mean_latency.value(),
            p.flash.static_report.defected,
            p.flash.dynamic_report.mean_latency.value(),
            p.flash.dynamic_report.defected,
        ));
        out.push_str(&format!(
            "regional outage (region {}, slots {:?}): quiet {:.3} min, faulted {:.3} min, \
             {} reallocations, {} redirected\n",
            p.outage.region,
            p.outage.slots,
            p.outage.quiet_report.mean_latency.value(),
            p.outage.faulted_report.mean_latency.value(),
            p.outage.faulted_report.resilience.reallocations,
            p.outage.faulted_report.resilience.redirected,
        ));
        out.push_str(&format!(
            "diurnal surge: {} sessions, {} defected, mean {:.3} min, p95 {:.3} min\n",
            p.diurnal.sessions,
            p.diurnal.defected,
            p.diurnal.mean_latency.value(),
            p.diurnal.p95_latency.value(),
        ));
    }
    out.push_str(&format!(
        "flagship: {} sessions, {} events fired\n",
        report.total_sessions, report.total_events_fired,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sim::AgendaKind;

    /// Unit-test scale: the full preset × scheme grid is expensive in
    /// debug builds (HB alone schedules ~512 receptions per session), so
    /// tests shrink the stream; `smoke()` stays the release-build CI
    /// configuration.
    fn tiny() -> ScenarioStudyConfig {
        ScenarioStudyConfig {
            rate: 1.5,
            horizon: Minutes(120.0),
            flash_at: Minutes(40.0),
            outage_start: Minutes(45.0),
            outage_duration: Minutes(30.0),
            ..ScenarioStudyConfig::paper_defaults()
        }
    }

    #[test]
    fn smoke_study_measures_every_cell() {
        let cfg = tiny();
        let (report, snap) = scenario_study(&cfg, 2, &Runner::serial()).expect("smoke study runs");
        assert_eq!(report.presets.len(), 3);
        for p in &report.presets {
            assert_eq!(p.schemes.len(), 4);
            let regions = p.regions.len();
            for s in &p.schemes {
                assert_eq!(s.shard_peak_agenda.len(), regions);
                let class_sessions: usize = s.classes.iter().map(|c| c.sessions).sum();
                assert_eq!(class_sessions, s.overall.sessions, "classes partition");
                assert!(s.overall.sessions > 0);
            }
            assert!(p.flash.static_report.accounted() > 0);
            assert!(p.outage.faulted_report.resilience.reallocations > 0);
            assert!(p.diurnal.sessions > 0);
        }
        // Asymmetric load by design: urban region shards peak apart.
        let sb = &report.presets[0].schemes[0];
        assert!(
            sb.shard_peak_agenda
                .iter()
                .any(|&a| a != sb.shard_peak_agenda[0]),
            "region shards should carry asymmetric load: {:?}",
            sb.shard_peak_agenda
        );
        assert!(snap.counter_total("engine_events_total") > 0);
        let txt = render_scenario(&report);
        assert!(txt.contains("preset urban"));
        assert!(txt.contains("flash crowd"));
    }

    #[test]
    fn flash_crowd_dynamic_strictly_beats_static() {
        // The acceptance pin: under the urban premiere, online
        // reallocation strictly beats the frozen hot set. Urban only and
        // SB only — the control cells don't depend on the scheme lineup,
        // and the full smoke grid is a release-build job.
        let cfg = ScenarioStudyConfig {
            presets: vec![ScenarioPreset::Urban],
            schemes: vec![SchemeId::Sb(Some(52))],
            ..ScenarioStudyConfig::smoke()
        };
        let (report, _) = scenario_study(&cfg, 1, &Runner::serial()).unwrap();
        let flash = &report.presets[0].flash;
        assert!(
            flash.dynamic_report.mean_latency < flash.static_report.mean_latency,
            "dynamic {} vs static {}",
            flash.dynamic_report.mean_latency,
            flash.static_report.mean_latency,
        );
    }

    #[test]
    fn report_is_invariant_to_flagship_knobs() {
        let cfg = tiny();
        let (base, base_snap) = scenario_study(&cfg, 1, &Runner::serial()).unwrap();
        for (shards, threads, agenda) in [(2, 4, AgendaKind::Heap), (4, 2, AgendaKind::Wheel)] {
            let (r, s) =
                scenario_study(&cfg, shards, &Runner::new(threads).with_agenda(agenda)).unwrap();
            assert_eq!(r, base, "flagship shards {shards}, threads {threads}");
            assert_eq!(s, base_snap);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                serde_json::to_string(&base).unwrap()
            );
        }
    }
}
