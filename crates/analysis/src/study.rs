//! The [`Study`] trait and registry: one dispatch surface for every
//! study this crate ships.
//!
//! Before this module existed, `sbcast` and the `sb-bench` binaries
//! each hand-rolled an entry point per study — nine nearly identical
//! flag-parse / run / render / write-artifact stanzas. A [`Study`] now
//! owns all of that behind four methods:
//!
//! * [`Study::name`] — the subcommand spelling (`sweep`, `frontier`, …),
//! * [`Study::artifact`] — the default `BENCH_*.json` path, when the
//!   study emits one unconditionally,
//! * [`Study::sharded`] — whether `--shards > 1` is meaningful,
//! * [`Study::run`] — flags in ([`StudyCtx`]), results out
//!   ([`StudyOutput`]).
//!
//! The CLI resolves a subcommand with [`find`], runs it, prints
//! [`StudyOutput::rendered`] to stdout and writes
//! [`StudyOutput::report_json`] to the artifact path — so stdout and the
//! JSON stay byte-identical with the pre-registry binaries, flag
//! spellings, defaults and error strings included. Wall-clock rates come
//! from [`StudyOutput::sessions`] / [`StudyOutput::events`] and go to
//! stderr only.
//!
//! Two subcommands keep a non-study half outside the registry: `hybrid`
//! without `--rates` (the single-server report) and `recovery --mode
//! run` (one supervised run under an explicit chaos script). Their study
//! halves (`--rates`, `--mode sweep`) dispatch through here like
//! everything else.

use std::collections::BTreeMap;

use sb_batching::BatchPolicy;
use sb_control::ControlConfig;
use sb_core::series::Width;
use sb_metrics::Snapshot;
use sb_resilience::{ChannelOutage, FaultScript};
use sb_workload::{PlacementPolicy, ScenarioPreset};
use vod_units::{Mbps, Minutes};

use crate::control_study::{render_shift_study, shift_study, ShiftStudyConfig};
use crate::distribution_study::{distribution_study, render_distribution, DistributionStudyConfig};
use crate::frontier::{frontier_report, render_frontier, FrontierConfig};
use crate::lineup::schemes_from;
use crate::recovery_study::{recovery_study, render_recovery, RecoveryConfig};
use crate::render::render_figure;
use crate::resilience_study::{render_resilience_study, resilience_study, ResilienceStudyConfig};
use crate::runner::{run_experiment, Experiment, Runner};
use crate::scale_study::{render_scale, scale_study, ScaleConfig};
use crate::scenario_study::{render_scenario, scenario_study, ScenarioStudyConfig};
use crate::throughput::{render_throughput, throughput_study, ThroughputConfig};
use crate::{figures, hybrid_study};

/// The `--key value` flag map a study parses its configuration from.
///
/// Lookups mirror the CLI's historical parser bit-for-bit: the same
/// defaults-on-absence behaviour and the same error strings
/// (`--{key}: bad number `{v}``, `--{key}: bad integer `{v}``), so
/// moving the parse into the studies changed no user-visible message.
#[derive(Debug, Clone, Default)]
pub struct StudyOpts(BTreeMap<String, String>);

impl StudyOpts {
    /// Build from any `(key, value)` pairs (keys without the `--`).
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        Self(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Set one flag, replacing any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.0.insert(key.into(), value.into());
    }

    /// The raw value of `--{key}`, if given.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// `--{key}` as an `f64`, or `default` when absent.
    ///
    /// # Errors
    /// `--{key}: bad number `{v}`` when the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    /// `--{key}` as a `usize`, or `default` when absent.
    ///
    /// # Errors
    /// `--{key}: bad integer `{v}`` when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer `{v}`")),
        }
    }

    /// `--{key}` as a string, or `default` when absent.
    #[must_use]
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Everything a [`Study`] receives from its caller: the flag map plus
/// the execution knobs the common `--threads` / `--shards` / `--seed` /
/// `--agenda` parser already validated.
pub struct StudyCtx<'a> {
    /// Study-specific flags (never the execution knobs).
    pub opts: &'a StudyOpts,
    /// Shard count for sharded studies (validated ≥ 1; 1 otherwise).
    pub shards: usize,
    /// `--seed`, when given; each study applies its own default.
    pub seed: Option<u64>,
    /// The worker pool, already driving the requested agenda backend.
    pub runner: &'a Runner,
}

/// What a [`Study`] produced. Everything deterministic lives here;
/// wall-clock is the caller's business.
#[derive(Debug)]
pub struct StudyOutput {
    /// The plain-text report, exactly what goes to stdout.
    pub rendered: String,
    /// The structured report as pretty JSON — the bytes of the
    /// `BENCH_*.json` artifact (or of `--json` for artifact-less
    /// studies).
    pub report_json: String,
    /// The metrics snapshot, for studies instrumented with one
    /// (`--metrics <path>` writes it).
    pub metrics: Option<Snapshot>,
    /// Sessions the study simulated, denominating the stderr wall-clock
    /// rate (0 when a rate would be meaningless).
    pub sessions: usize,
    /// Engine events the study fired, same purpose.
    pub events: u64,
}

impl StudyOutput {
    /// Package a report: render text + serialize JSON in one step.
    fn of<T: serde::Serialize>(rendered: String, report: &T) -> Result<Self, String> {
        Ok(Self {
            rendered,
            report_json: serde_json::to_string_pretty(report).map_err(|e| e.to_string())?,
            metrics: None,
            sessions: 0,
            events: 0,
        })
    }

    /// Attach a metrics snapshot.
    fn with_metrics(mut self, snapshot: Snapshot) -> Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Attach the wall-clock denominators.
    fn with_rates(mut self, sessions: usize, events: u64) -> Self {
        self.sessions = sessions;
        self.events = events;
        self
    }
}

/// One study: a named, self-describing flag-parse / run / render unit
/// every front end (CLI subcommand, bench binary) dispatches through.
pub trait Study: Sync {
    /// The subcommand spelling (`sweep`, `scale`, `distribution`, …).
    fn name(&self) -> &'static str;

    /// The default artifact path when the study always writes one
    /// (`BENCH_*.json`); `None` means JSON only goes where `--json`
    /// points.
    fn artifact(&self) -> Option<&'static str> {
        None
    }

    /// Whether `--shards > 1` is meaningful for this study. Non-sharded
    /// studies reject the flag instead of silently ignoring it.
    fn sharded(&self) -> bool {
        false
    }

    /// Parse flags from the context and run.
    ///
    /// # Errors
    /// A CLI-facing message: a flag that does not parse, an out-of-range
    /// configuration, or a study failure.
    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String>;
}

/// Parse a comma-separated list, with the CLI's `bad {what} `{t}``
/// message on the first token that does not parse.
fn parse_csv<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|t| t.trim().parse().map_err(|_| format!("bad {what} `{t}`")))
        .collect()
}

/// Resolve `--profile paper|smoke` into a config via the two
/// constructors, with the shared error message.
fn parse_profile<T>(
    opts: &StudyOpts,
    paper: impl FnOnce() -> T,
    smoke: impl FnOnce() -> T,
) -> Result<T, String> {
    match opts.get_str("profile", "paper").as_str() {
        "paper" => Ok(paper()),
        "smoke" => Ok(smoke()),
        other => Err(format!(
            "--profile: expected `smoke` or `paper`, got `{other}`"
        )),
    }
}

/// Parse the admission-backoff flags shared by `control`, `resilience`
/// and `recovery --mode run`: `--retry <base-minutes>` enables deferral;
/// `--retry-factor` (default 2) and `--retry-attempts` (default 5) shape
/// the exponential schedule.
///
/// # Errors
/// `--retry: bad number `{v}`` (and the usual messages for the other two
/// flags), or the backoff constructor's own validation error.
pub fn parse_backoff(opts: &StudyOpts) -> Result<Option<sb_control::Backoff>, String> {
    let Some(base) = opts.get("retry") else {
        return Ok(None);
    };
    let base: f64 = base
        .parse()
        .map_err(|_| format!("--retry: bad number `{base}`"))?;
    let factor = opts.get_f64("retry-factor", 2.0)?;
    let attempts = opts.get_usize("retry-attempts", 5)? as u32;
    sb_control::Backoff::new(Minutes(base), factor, attempts)
        .map(Some)
        .map_err(|e| e.to_string())
}

/// The bandwidth sweep behind Figures 6/7/8 plus the analytic-vs-simulated
/// crosscheck.
struct SweepStudy;

impl Study for SweepStudy {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let from = o.get_f64("from", 100.0)?;
        let to = o.get_f64("to", 600.0)?;
        let step = o.get_f64("step", 20.0)?;
        let samples = o.get_usize("samples", 24)?;
        let seed = ctx.seed.unwrap_or(0);
        let ids = schemes_from(&o.get_str("scheme", "all"))?;
        if !(step > 0.0 && to >= from) {
            return Err(format!("bad sweep range: from {from} to {to} step {step}"));
        }
        let exp = Experiment::over_range("sweep", ids.clone(), from, to, step).with_seed(seed);
        let report = run_experiment(&exp, Minutes(15.0), samples, ctx.runner);
        let mut rendered = String::new();
        for (fig, name) in [
            (figures::figure7(&report.rows, &ids), "latency"),
            (figures::figure6(&report.rows, &ids), "disk bandwidth"),
            (figures::figure8(&report.rows, &ids), "storage"),
        ] {
            rendered.push_str(&format!("--- {name} ---\n"));
            rendered.push_str(&render_figure(&fig));
            rendered.push('\n');
        }
        if !report.checks.is_empty() {
            let worst_latency = report
                .checks
                .iter()
                .map(crate::crosscheck::CrossCheck::latency_ratio)
                .fold(0.0f64, f64::max);
            let worst_buffer = report
                .checks
                .iter()
                .map(crate::crosscheck::CrossCheck::buffer_ratio)
                .fold(0.0f64, f64::max);
            rendered.push_str(&format!(
                "--- crosscheck: {} (scheme, bandwidth) points × {samples} simulated arrivals (seed {seed}) ---\n",
                report.checks.len()
            ));
            rendered.push_str(&format!(
                "worst simulated/analytic latency ratio: {worst_latency:.4} (must be <= 1)\n"
            ));
            rendered.push_str(&format!(
                "worst simulated/analytic buffer  ratio: {worst_buffer:.4} (must be <= 1)\n"
            ));
        }
        StudyOutput::of(rendered, &report)
    }
}

/// `hybrid --rates …`: hybrid vs pure batching over a list of arrival
/// rates (the flag-less single-server report stays in the CLI).
struct HybridStudy;

impl Study for HybridStudy {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let spec = o.get("rates").ok_or_else(|| {
            "hybrid study mode needs --rates r1,r2,… (run without --rates for the single-server report)"
                .to_string()
        })?;
        let rates: Vec<f64> = parse_csv(spec, "rate")?;
        let b = o.get_f64("bandwidth", 600.0)?;
        let titles = o.get_usize("titles", 60)?;
        let popular = o.get_usize("popular", 10)?;
        let horizon = o.get_f64("horizon", 600.0)?;
        let width = o.get_usize("width", 52)? as u64;
        let cfg = hybrid_study::StudyConfig {
            titles,
            popular,
            bandwidth: Mbps(b),
            width,
            broadcast_fraction: 0.5,
            horizon: Minutes(horizon),
            mean_patience: Minutes(8.0),
            seed: ctx.seed.unwrap_or(42),
        };
        let points = hybrid_study::throughput_study_with(cfg, &rates, ctx.runner);
        let mut rendered = format!(
            "hybrid vs pure batching: {titles} titles, {popular} broadcast, B = {b} Mb/s\n"
        );
        rendered.push_str(&format!(
            "{:>8} {:>9} {:>11} {:>12} {:>13} {:>14}\n",
            "rate/min", "requests", "pure served", "pure renege", "hybrid served", "hybrid renege"
        ));
        for p in &points {
            rendered.push_str(&format!(
                "{:>8.1} {:>9} {:>11} {:>11.1}% {:>13} {:>13.1}%\n",
                p.rate_per_minute,
                p.requests,
                p.pure_served,
                p.pure_renege_rate * 100.0,
                p.hybrid_served,
                p.hybrid_renege_rate * 100.0
            ));
        }
        if let Some(first) = points.first() {
            rendered.push_str(&format!(
                "broadcast worst latency (rate-independent): {:.3}\n",
                first.broadcast_worst_latency
            ));
        }
        StudyOutput::of(rendered, &points)
    }
}

/// Static vs dynamic channel control under a popularity shift.
struct ControlStudy;

impl Study for ControlStudy {
    fn name(&self) -> &'static str {
        "control"
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let titles = o.get_usize("titles", 40)?;
        let control = ControlConfig {
            titles,
            hot_slots: o.get_usize("popular", 8)?,
            total_bandwidth: Mbps(o.get_f64("bandwidth", 300.0)?),
            broadcast_fraction: o.get_f64("fraction", 0.6)?,
            width: Width::capped_lossy(o.get_usize("width", 52)? as u64),
            batch: BatchPolicy::Mql,
            tick: Minutes(o.get_f64("tick", 15.0)?),
            half_life: Minutes(o.get_f64("half-life", 45.0)?),
            hysteresis: o.get_f64("hysteresis", 0.1)?,
            admission_ceiling: o.get_f64("ceiling", 3.0)?,
            admission_retry: parse_backoff(o)?,
        };
        let cfg = ShiftStudyConfig {
            control,
            rate: o.get_f64("rate", 6.0)?,
            horizon: Minutes(o.get_f64("horizon", 600.0)?),
            shift_at: Minutes(o.get_f64("shift-at", 150.0)?),
            rotate: o.get_usize("rotate", titles / 2)?,
            mean_patience: Minutes(o.get_f64("patience", 45.0)?),
            seeds: parse_csv(&o.get_str("seeds", "11,23,47"), "seed")?,
        };
        let (study, snapshot) = shift_study(&cfg, ctx.runner).map_err(|e| e.to_string())?;
        Ok(StudyOutput::of(render_shift_study(&study), &study)?.with_metrics(snapshot))
    }
}

/// The fault study: schemes under bursty loss/outages and the control
/// plane's recovery.
struct ResilienceStudy;

impl Study for ResilienceStudy {
    fn name(&self) -> &'static str {
        "resilience"
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = ResilienceStudyConfig::paper_defaults();
        cfg.bandwidth = Mbps(o.get_f64("bandwidth", 320.0)?);
        cfg.horizon = Minutes(o.get_f64("horizon", 200.0)?);
        cfg.samples = o.get_usize("samples", 24)?;
        cfg.burst_len = o.get_f64("burst-len", 4.0)?;
        if let Some(spec) = o.get("loss-rates") {
            cfg.loss_rates = parse_csv(spec, "loss rate")?;
        }
        cfg.seeds = parse_csv(&o.get_str("seeds", "11,23,47"), "seed")?;
        cfg.script = FaultScript {
            outages: vec![ChannelOutage {
                channel: o.get_usize("outage-channel", 0)?,
                start: Minutes(o.get_f64("outage-start", 60.0)?),
                duration: Minutes(o.get_f64("outage-duration", 25.0)?),
            }],
            ..FaultScript::none()
        };
        cfg.rate = o.get_f64("rate", 6.0)?;
        cfg.mean_patience = Minutes(o.get_f64("patience", 45.0)?);
        cfg.control.admission_retry = parse_backoff(o)?;
        let (study, snapshot) = resilience_study(&cfg, ctx.runner).map_err(|e| e.to_string())?;
        Ok(StudyOutput::of(render_resilience_study(&study), &study)?.with_metrics(snapshot))
    }
}

/// Streaming-core throughput plus the agenda-churn compaction stress.
struct ThroughputStudy;

impl Study for ThroughputStudy {
    fn name(&self) -> &'static str {
        "throughput"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_throughput.json")
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = ThroughputConfig::paper_defaults();
        cfg.bandwidth = Mbps(o.get_f64("bandwidth", cfg.bandwidth.value())?);
        cfg.schemes = match o.get("scheme") {
            None => cfg.schemes,
            Some(s) => schemes_from(s)?,
        };
        cfg.sessions = o.get_usize("samples", cfg.sessions)?;
        cfg.horizon = Minutes(o.get_f64("horizon", cfg.horizon.value())?);
        cfg.churn_cancels = o.get_usize("churn-cancels", cfg.churn_cancels as usize)? as u64;
        cfg.seed = ctx.seed.unwrap_or(cfg.seed);
        let (report, snapshot) = throughput_study(&cfg, ctx.runner).map_err(|e| e.to_string())?;
        let churn_events = report.churn.engine.fired + report.churn.engine.cancelled;
        let (sessions, events) = (
            report.total_sessions,
            report.total_events_fired + churn_events,
        );
        Ok(StudyOutput::of(render_throughput(&report), &report)?
            .with_metrics(snapshot)
            .with_rates(sessions, events))
    }
}

/// Sharded scale-out: per-shard agenda footprint and sim-time rates.
struct ScaleStudy;

impl Study for ScaleStudy {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_scale.json")
    }

    fn sharded(&self) -> bool {
        true
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = ScaleConfig::paper_defaults();
        cfg.bandwidth = Mbps(o.get_f64("bandwidth", cfg.bandwidth.value())?);
        cfg.sessions = o.get_usize("sessions", cfg.sessions)?;
        cfg.horizon = Minutes(o.get_f64("horizon", cfg.horizon.value())?);
        cfg.videos = o.get_usize("videos", cfg.videos)?;
        cfg.seed = ctx.seed.unwrap_or(cfg.seed);
        let (report, snapshot) =
            scale_study(&cfg, ctx.shards, ctx.runner).map_err(|e| e.to_string())?;
        // One pass per grid cell plus the flagship: the wall-rate
        // denominator counts what actually streamed.
        let passes = report.cells.len() + 1;
        let (sessions, events) = (
            report.total_sessions * passes,
            report.total_events_fired * passes as u64,
        );
        Ok(StudyOutput::of(render_scale(&report), &report)?
            .with_metrics(snapshot)
            .with_rates(sessions, events))
    }
}

/// The metropolitan scenario pack: regional SB vs baselines, flash
/// crowds, correlated outages.
struct ScenarioStudy;

impl Study for ScenarioStudy {
    fn name(&self) -> &'static str {
        "scenario"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_scenario.json")
    }

    fn sharded(&self) -> bool {
        true
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = parse_profile(
            o,
            ScenarioStudyConfig::paper_defaults,
            ScenarioStudyConfig::smoke,
        )?;
        cfg.presets = parse_presets(o, cfg.presets)?;
        if let Some(s) = o.get("scheme") {
            cfg.schemes = schemes_from(s)?;
        }
        cfg.rate = o.get_f64("rate", cfg.rate)?;
        cfg.horizon = Minutes(o.get_f64("horizon", cfg.horizon.value())?);
        cfg.mean_patience = Minutes(o.get_f64("patience", cfg.mean_patience.value())?);
        cfg.flash_at = Minutes(o.get_f64("flash-at", cfg.flash_at.value())?);
        cfg.flash_rate_boost = o.get_f64("flash-boost", cfg.flash_rate_boost)?;
        cfg.outage_start = Minutes(o.get_f64("outage-start", cfg.outage_start.value())?);
        cfg.outage_duration = Minutes(o.get_f64("outage-duration", cfg.outage_duration.value())?);
        cfg.seed = ctx.seed.unwrap_or(cfg.seed);
        let (report, snapshot) =
            scenario_study(&cfg, ctx.shards, ctx.runner).map_err(|e| e.to_string())?;
        let (sessions, events) = (report.total_sessions, report.total_events_fired);
        Ok(StudyOutput::of(render_scenario(&report), &report)?
            .with_metrics(snapshot)
            .with_rates(sessions, events))
    }
}

/// Resolve `--preset urban|rural|remote|all` against a profile's default
/// preset list.
fn parse_presets(
    opts: &StudyOpts,
    default: Vec<ScenarioPreset>,
) -> Result<Vec<ScenarioPreset>, String> {
    match opts.get_str("preset", "all").as_str() {
        "all" => Ok(default),
        "urban" => Ok(vec![ScenarioPreset::Urban]),
        "rural" => Ok(vec![ScenarioPreset::Rural]),
        "remote" => Ok(vec![ScenarioPreset::Remote]),
        other => Err(format!(
            "--preset: expected `urban`, `rural`, `remote` or `all`, got `{other}`"
        )),
    }
}

/// `recovery --mode sweep`: the checkpoint-cadence trade under the
/// crash-recovery supervisor (`--mode run` stays in the CLI).
struct RecoveryStudy;

impl Study for RecoveryStudy {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_recovery.json")
    }

    fn sharded(&self) -> bool {
        true
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = parse_profile(o, RecoveryConfig::paper_defaults, RecoveryConfig::smoke)?;
        cfg.bandwidth = Mbps(o.get_f64("bandwidth", cfg.bandwidth.value())?);
        cfg.sessions = o.get_usize("sessions", cfg.sessions)?;
        cfg.horizon = Minutes(o.get_f64("horizon", cfg.horizon.value())?);
        cfg.videos = o.get_usize("titles", cfg.videos)?;
        cfg.kills = o.get_usize("kills", cfg.kills)?;
        cfg.seed = ctx.seed.unwrap_or(cfg.seed);
        if ctx.shards > 1 {
            cfg.shards = ctx.shards;
        }
        let report = recovery_study(&cfg, ctx.runner).map_err(|e| e.to_string())?;
        // One baseline pass plus one supervised pass per cadence cell
        // (replays run on top, but they are part of the measurement, not
        // the denominator); events count the sessions chaos replayed.
        let sessions = report.fold.sessions * (report.rows.len() + 1);
        let replayed: u64 = report.rows.iter().map(|r| r.replayed_sessions).sum();
        Ok(StudyOutput::of(render_recovery(&report), &report)?.with_rates(sessions, replayed))
    }
}

/// The scheme-zoo Pareto frontier in latency × client-I/O × buffer.
struct FrontierStudy;

impl Study for FrontierStudy {
    fn name(&self) -> &'static str {
        "frontier"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_frontier.json")
    }

    fn sharded(&self) -> bool {
        true
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = parse_profile(o, FrontierConfig::paper, FrontierConfig::smoke)?;
        if let Some(spec) = o.get("bandwidths") {
            cfg.bandwidths = parse_csv(spec, "bandwidth")?;
        }
        if let Some(spec) = o.get("catalogs") {
            cfg.catalogs = parse_csv(spec, "catalog size")?;
        }
        cfg.sessions = o.get_usize("sessions", cfg.sessions)?;
        cfg.horizon = Minutes(o.get_f64("horizon", cfg.horizon.value())?);
        cfg.include_buggy_hb = o.get_str("buggy-hb", "no") != "no";
        cfg.seed = ctx.seed.unwrap_or(cfg.seed);
        let report = frontier_report(&cfg, ctx.shards, ctx.runner);
        StudyOutput::of(render_frontier(&report), &report)
    }
}

/// The distributed tier: placement policies × peer assist priced against
/// the Viennot source-once bound.
struct DistributionStudy;

impl Study for DistributionStudy {
    fn name(&self) -> &'static str {
        "distribution"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_distribution.json")
    }

    fn sharded(&self) -> bool {
        true
    }

    fn run(&self, ctx: &StudyCtx<'_>) -> Result<StudyOutput, String> {
        let o = ctx.opts;
        let mut cfg = parse_profile(
            o,
            DistributionStudyConfig::paper_defaults,
            DistributionStudyConfig::smoke,
        )?;
        cfg.presets = parse_presets(o, cfg.presets)?;
        if let Some(s) = o.get("scheme") {
            let ids = schemes_from(s)?;
            if ids.len() != 1 {
                return Err("distribution prices one scheme per run (got `all`)".to_string());
            }
            cfg.scheme = ids[0];
        }
        if let Some(spec) = o.get("policies") {
            cfg.policies = spec
                .split(',')
                .map(|t| {
                    PlacementPolicy::parse(t.trim())
                        .ok_or_else(|| format!("unknown placement policy `{t}`"))
                })
                .collect::<Result<_, _>>()?;
        }
        cfg.rate = o.get_f64("rate", cfg.rate)?;
        cfg.horizon = Minutes(o.get_f64("horizon", cfg.horizon.value())?);
        cfg.mean_patience = Minutes(o.get_f64("patience", cfg.mean_patience.value())?);
        cfg.backbone_mbps = o.get_f64("backbone", cfg.backbone_mbps)?;
        cfg.tail_from = o.get_usize("tail-from", cfg.tail_from)?;
        cfg.uplink_fraction = o.get_f64("uplink-fraction", cfg.uplink_fraction)?;
        cfg.seed = ctx.seed.unwrap_or(cfg.seed);
        let (report, snapshot) =
            distribution_study(&cfg, ctx.shards, ctx.runner).map_err(|e| e.to_string())?;
        let (sessions, events) = (report.total_sessions, report.total_events_fired);
        Ok(StudyOutput::of(render_distribution(&report), &report)?
            .with_metrics(snapshot)
            .with_rates(sessions, events))
    }
}

/// Every registered study, in `sbcast`'s usage order.
#[must_use]
pub fn registry() -> &'static [&'static dyn Study] {
    const REGISTRY: &[&dyn Study] = &[
        &SweepStudy,
        &HybridStudy,
        &ControlStudy,
        &ResilienceStudy,
        &ThroughputStudy,
        &ScaleStudy,
        &ScenarioStudy,
        &RecoveryStudy,
        &FrontierStudy,
        &DistributionStudy,
    ];
    REGISTRY
}

/// Look a study up by its subcommand spelling.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Study> {
    registry().iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_artifacts_and_shards() {
        let names: Vec<_> = registry().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "sweep",
                "hybrid",
                "control",
                "resilience",
                "throughput",
                "scale",
                "scenario",
                "recovery",
                "frontier",
                "distribution",
            ]
        );
        for s in registry() {
            assert_eq!(find(s.name()).map(Study::name), Some(s.name()));
            if let Some(a) = s.artifact() {
                assert_eq!(a, format!("BENCH_{}.json", s.name()));
            }
        }
        let sharded: Vec<_> = registry()
            .iter()
            .filter(|s| s.sharded())
            .map(|s| s.name())
            .collect();
        assert_eq!(
            sharded,
            ["scale", "scenario", "recovery", "frontier", "distribution"]
        );
        assert!(find("plan").is_none(), "non-study subcommands stay out");
    }

    #[test]
    fn opts_error_strings_match_the_cli() {
        let o = StudyOpts::from_pairs([("rate", "x"), ("samples", "y")]);
        assert_eq!(
            o.get_f64("rate", 1.0).unwrap_err(),
            "--rate: bad number `x`"
        );
        assert_eq!(
            o.get_usize("samples", 1).unwrap_err(),
            "--samples: bad integer `y`"
        );
        assert_eq!(o.get_f64("absent", 2.5).unwrap(), 2.5);
        assert_eq!(o.get_str("absent", "d"), "d");
        assert_eq!(
            parse_csv::<f64>("1,zap", "rate").unwrap_err(),
            "bad rate `zap`"
        );
        assert_eq!(
            parse_profile(&StudyOpts::from_pairs([("profile", "warm")]), || 1, || 2).unwrap_err(),
            "--profile: expected `smoke` or `paper`, got `warm`"
        );
    }

    #[test]
    fn sweep_study_runs_through_the_trait() {
        let opts = StudyOpts::from_pairs([
            ("from", "300"),
            ("to", "300"),
            ("step", "20"),
            ("samples", "2"),
            ("scheme", "SB:W=52"),
        ]);
        let runner = Runner::serial();
        let ctx = StudyCtx {
            opts: &opts,
            shards: 1,
            seed: None,
            runner: &runner,
        };
        let out = find("sweep").unwrap().run(&ctx).unwrap();
        assert!(out.rendered.contains("--- latency ---"));
        assert!(out.rendered.contains("--- crosscheck:"));
        assert!(out.report_json.contains("\"rows\""));
        assert!(out.metrics.is_none());
    }

    #[test]
    fn hybrid_study_requires_rates() {
        let opts = StudyOpts::default();
        let runner = Runner::serial();
        let ctx = StudyCtx {
            opts: &opts,
            shards: 1,
            seed: None,
            runner: &runner,
        };
        let err = find("hybrid").unwrap().run(&ctx).unwrap_err();
        assert!(err.contains("--rates"), "{err}");
    }
}
