//! Tables 1 and 2, regenerated.
//!
//! Table 1 lists the closed-form performance expressions per scheme;
//! Table 2 the design-parameter selection rules. We reproduce both as (a)
//! the symbolic rules, for documentation, and (b) their numeric evaluation
//! over a row of bandwidths, which is what the paper's figures plot.

use serde::{Deserialize, Serialize};
use vod_units::Mbps;

use sb_core::config::SystemConfig;

use crate::lineup::SchemeId;
use crate::sweep::evaluate;

/// The symbolic content of Table 1 for one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormulaRow {
    /// Scheme label.
    pub scheme: String,
    /// Client I/O bandwidth expression.
    pub io_bandwidth: String,
    /// Access-latency expression.
    pub access_latency: String,
    /// Buffer-space expression.
    pub buffer_space: String,
}

/// Table 1's formula box (as reconstructed; see DESIGN.md §3).
#[must_use]
pub fn table1_formulas() -> Vec<FormulaRow> {
    vec![
        FormulaRow {
            scheme: "PB".into(),
            io_bandwidth: "b + 2B/K".into(),
            access_latency: "D1*M*K*b/B,  D1 = D(a-1)/(a^K - 1)".into(),
            buffer_space: "60*b*(D_{K-1}*(1 - 1/M) + D_K)".into(),
        },
        FormulaRow {
            scheme: "PPB".into(),
            io_bandwidth: "b + B/(K*M*P)".into(),
            access_latency: "D1*M*K*b/B,  D1 = D(a-1)/(a^K - 1)".into(),
            buffer_space: "60*b*(D_{K-1} + D_K)*(M*K*b/B)".into(),
        },
        FormulaRow {
            scheme: "SB".into(),
            io_bandwidth: "b (W=1 or K=1); 2b (W=2 or K=2,3); 3b otherwise".into(),
            access_latency: "D1 = D / sum_{i=1..K} min(f(i), W)".into(),
            buffer_space: "60*b*D1*(W-1)".into(),
        },
    ]
}

/// The symbolic content of Table 2 (parameter-selection rules).
#[must_use]
pub fn table2_rules() -> Vec<(String, String)> {
    vec![
        (
            "PB:a".into(),
            "K = ceil(B/(e*M*b)),  a = B/(b*M*K)  [a <= e]".into(),
        ),
        (
            "PB:b".into(),
            "K = floor(B/(e*M*b)), a = B/(b*M*K)  [a >= e]".into(),
        ),
        (
            "PPB:a".into(),
            "K = clamp(floor(B/(2*M*b)), 2, 7), x = B/(K*M*b), P = max(1, floor(x-2)), a = x - P"
                .into(),
        ),
        (
            "PPB:b".into(),
            "K = clamp(floor(B/(3*M*b)), 2, 7), x = B/(K*M*b), P = max(2, floor(x-2)), a = x - P"
                .into(),
        ),
        (
            "SB".into(),
            "K = floor(B/(b*M)); W chosen from the series to meet the latency target".into(),
        ),
    ]
}

/// One numeric Table-1 evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedRow {
    /// Scheme label.
    pub scheme: String,
    /// Server bandwidth of this evaluation.
    pub bandwidth: f64,
    /// Channels per video / fragments.
    pub k: usize,
    /// PPB replicas.
    pub p: Option<usize>,
    /// Geometric factor.
    pub alpha: Option<f64>,
    /// Client I/O bandwidth (Mb/s).
    pub io_mbps: f64,
    /// Access latency (minutes).
    pub latency_min: f64,
    /// Buffer (MBytes).
    pub buffer_mbytes: f64,
}

/// Evaluate the full lineup at a set of bandwidths (the numeric half of
/// Tables 1 & 2).
#[must_use]
pub fn evaluate_tables(ids: &[SchemeId], bandwidths: &[f64]) -> Vec<EvaluatedRow> {
    evaluate_tables_with(ids, bandwidths, &crate::runner::Runner::serial())
}

/// [`evaluate_tables`] on an explicit [`crate::runner::Runner`] —
/// bandwidths evaluated in parallel, row order identical to serial
/// (bandwidth-major).
#[must_use]
pub fn evaluate_tables_with(
    ids: &[SchemeId],
    bandwidths: &[f64],
    runner: &crate::runner::Runner,
) -> Vec<EvaluatedRow> {
    runner
        .timed_map("tables", bandwidths, |&b| {
            let cfg = SystemConfig::paper_defaults(Mbps(b));
            ids.iter()
                .filter_map(|&id| {
                    evaluate(id, &cfg).map(|p| EvaluatedRow {
                        scheme: id.label(),
                        bandwidth: b,
                        k: p.params.k,
                        p: p.params.p,
                        alpha: p.params.alpha,
                        io_mbps: p.metrics.client_io_bandwidth.value(),
                        latency_min: p.metrics.access_latency.value(),
                        buffer_mbytes: p.metrics.buffer_mbytes().value(),
                    })
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup::paper_lineup;

    #[test]
    fn formulas_cover_all_three_schemes() {
        let t = table1_formulas();
        assert_eq!(t.len(), 3);
        assert!(t.iter().any(|r| r.scheme == "SB"));
        assert_eq!(table2_rules().len(), 5);
    }

    #[test]
    fn evaluation_produces_rows_for_feasible_schemes() {
        let rows = evaluate_tables(&paper_lineup(), &[100.0, 320.0, 600.0]);
        // At 320 and 600 all nine schemes are feasible; at 100 the PPBs are
        // borderline.
        assert!(rows.len() >= 9 * 2 + 5);
        let sb = rows
            .iter()
            .find(|r| r.scheme == "SB:W=52" && r.bandwidth == 320.0)
            .unwrap();
        assert_eq!(sb.k, 21);
        assert!(sb.alpha.is_none());
        let ppb = rows
            .iter()
            .find(|r| r.scheme == "PPB:b" && r.bandwidth == 320.0)
            .unwrap();
        assert_eq!((ppb.k, ppb.p), (7, Some(2)));
        assert!((ppb.latency_min - 5.0).abs() < 0.5);
    }
}
