//! End-to-end smoke tests for the `sbcast` binary: bad input must exit
//! nonzero with a one-line error on stderr, never a panic backtrace.

use std::process::Command;

fn sbcast(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sbcast"))
        .args(args)
        .output()
        .expect("spawn sbcast")
}

fn assert_clean_failure(out: &std::process::Output) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expected nonzero exit");
    assert!(
        stderr.contains("error:") || stderr.contains("usage:"),
        "stderr should explain the failure, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "bad input must not panic: {stderr}"
    );
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = sbcast(&[]);
    assert_clean_failure(&out);
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = sbcast(&["frobnicate"]);
    assert_clean_failure(&out);
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = sbcast(&["plan", "--bandwidth", "not-a-number"]);
    assert_clean_failure(&out);
}

#[test]
fn dangling_flag_fails_cleanly() {
    let out = sbcast(&["metrics", "--bandwidth"]);
    assert_clean_failure(&out);
}

#[test]
fn bad_resilience_config_fails_cleanly() {
    // Loss rate above 1: rejected by up-front validation, not a panic.
    let out = sbcast(&["resilience", "--loss-rates", "1.5", "--samples", "1"]);
    assert_clean_failure(&out);
    // An outage naming a slot the control half does not have.
    let out = sbcast(&["resilience", "--outage-channel", "99", "--samples", "1"]);
    assert_clean_failure(&out);
}

#[test]
fn plan_succeeds_on_defaults() {
    let out = sbcast(&["plan"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("channels"));
}

#[test]
fn every_study_subcommand_rejects_zero_threads_identically() {
    for cmd in [
        "sweep",
        "hybrid",
        "control",
        "resilience",
        "throughput",
        "scale",
        "scenario",
    ] {
        let out = sbcast(&[cmd, "--threads", "0"]);
        assert_clean_failure(&out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error: --threads must be at least 1 (got 0)"),
            "`{cmd}` must reject --threads 0 with the shared message, got: {stderr}"
        );
    }
}

#[test]
fn zero_shards_and_unsharded_commands_reject_the_shards_flag() {
    let out = sbcast(&["scale", "--shards", "0"]);
    assert_clean_failure(&out);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error: --shards must be at least 1 (got 0)")
    );
    for cmd in ["sweep", "hybrid", "control", "resilience", "throughput"] {
        let out = sbcast(&[cmd, "--shards", "2"]);
        assert_clean_failure(&out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--shards applies only to `scale` and `scenario`"),
            "`{cmd}` must refuse --shards through the shared gate, got: {stderr}"
        );
    }
}

#[test]
fn scenario_rejects_bad_preset_and_profile_cleanly() {
    let out = sbcast(&["scenario", "--preset", "atlantis"]);
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--preset"));
    let out = sbcast(&["scenario", "--profile", "huge"]);
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile"));
}

#[test]
fn scenario_is_shard_thread_and_agenda_invariant() {
    // A deliberately small stream (the binary under test is a debug
    // build): one preset, one scheme, 120 simulated minutes. The full
    // smoke profile runs in release under scripts/verify.sh.
    let dir = std::env::temp_dir().join(format!("sbcast-scenario-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for (shards, threads, agenda) in [("1", "1", "heap"), ("2", "4", "wheel"), ("4", "2", "heap")] {
        let json = dir.join(format!("scenario-{shards}-{threads}-{agenda}.json"));
        let out = sbcast(&[
            "scenario",
            "--profile",
            "smoke",
            "--preset",
            "urban",
            "--scheme",
            "SB:W=52",
            "--rate",
            "1.5",
            "--horizon",
            "120",
            "--flash-at",
            "40",
            "--outage-start",
            "45",
            "--outage-duration",
            "30",
            "--shards",
            shards,
            "--threads",
            threads,
            "--agenda",
            agenda,
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "scenario must run at {shards}/{threads}/{agenda}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outs.push((out.stdout, std::fs::read(&json).unwrap()));
    }
    for (stdout, json) in &outs[1..] {
        assert_eq!(
            &outs[0].0, stdout,
            "stdout must not depend on --shards/--threads/--agenda"
        );
        assert_eq!(
            &outs[0].1, json,
            "JSON must not depend on --shards/--threads/--agenda"
        );
    }
    let json = String::from_utf8_lossy(&outs[0].1);
    assert!(json.contains("demand_share"));
    assert!(json.contains("dynamic_report"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scale_is_shard_and_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("sbcast-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for (shards, threads) in [("1", "1"), ("2", "4"), ("4", "2")] {
        let json = dir.join(format!("scale-{shards}-{threads}.json"));
        let out = sbcast(&[
            "scale",
            "--sessions",
            "2000",
            "--horizon",
            "200",
            "--shards",
            shards,
            "--threads",
            threads,
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "scale must run at {shards}/{threads}");
        outs.push((out.stdout, std::fs::read(&json).unwrap()));
    }
    for (stdout, json) in &outs[1..] {
        assert_eq!(
            &outs[0].0, stdout,
            "stdout must not depend on --shards/--threads"
        );
        assert_eq!(
            &outs[0].1, json,
            "JSON must not depend on --shards/--threads"
        );
    }
    let json = String::from_utf8_lossy(&outs[0].1);
    assert!(json.contains("shard_peak_agenda"));
    assert!(json.contains("sessions_per_sim_second"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn throughput_writes_json_and_is_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("sbcast-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for threads in ["1", "2"] {
        let json = dir.join(format!("thr-{threads}.json"));
        let out = sbcast(&[
            "throughput",
            "--samples",
            "20",
            "--threads",
            threads,
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "throughput must run");
        outs.push((out.stdout, std::fs::read(&json).unwrap()));
    }
    assert_eq!(outs[0].0, outs[1].0, "stdout must not depend on --threads");
    assert_eq!(outs[0].1, outs[1].1, "JSON must not depend on --threads");
    let json = String::from_utf8_lossy(&outs[0].1);
    assert!(json.contains("peak_agenda"));
    assert!(json.contains("churn"));
    std::fs::remove_dir_all(&dir).ok();
}
