//! End-to-end smoke tests for the `sbcast` binary: bad input must exit
//! nonzero with a one-line error on stderr, never a panic backtrace.

use std::process::Command;

fn sbcast(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sbcast"))
        .args(args)
        .output()
        .expect("spawn sbcast")
}

fn assert_clean_failure(out: &std::process::Output) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expected nonzero exit");
    assert!(
        stderr.contains("error:") || stderr.contains("usage:"),
        "stderr should explain the failure, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "bad input must not panic: {stderr}"
    );
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = sbcast(&[]);
    assert_clean_failure(&out);
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = sbcast(&["frobnicate"]);
    assert_clean_failure(&out);
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = sbcast(&["plan", "--bandwidth", "not-a-number"]);
    assert_clean_failure(&out);
}

#[test]
fn dangling_flag_fails_cleanly() {
    let out = sbcast(&["metrics", "--bandwidth"]);
    assert_clean_failure(&out);
}

#[test]
fn bad_resilience_config_fails_cleanly() {
    // Loss rate above 1: rejected by up-front validation, not a panic.
    let out = sbcast(&["resilience", "--loss-rates", "1.5", "--samples", "1"]);
    assert_clean_failure(&out);
    // An outage naming a slot the control half does not have.
    let out = sbcast(&["resilience", "--outage-channel", "99", "--samples", "1"]);
    assert_clean_failure(&out);
}

#[test]
fn plan_succeeds_on_defaults() {
    let out = sbcast(&["plan"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("channels"));
}

#[test]
fn every_study_subcommand_rejects_zero_threads_identically() {
    for cmd in [
        "sweep",
        "hybrid",
        "control",
        "resilience",
        "throughput",
        "scale",
        "scenario",
    ] {
        let out = sbcast(&[cmd, "--threads", "0"]);
        assert_clean_failure(&out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error: --threads must be at least 1 (got 0)"),
            "`{cmd}` must reject --threads 0 with the shared message, got: {stderr}"
        );
    }
}

#[test]
fn zero_shards_and_unsharded_commands_reject_the_shards_flag() {
    let out = sbcast(&["scale", "--shards", "0"]);
    assert_clean_failure(&out);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error: --shards must be at least 1 (got 0)")
    );
    for cmd in ["sweep", "hybrid", "control", "resilience", "throughput"] {
        let out = sbcast(&[cmd, "--shards", "2"]);
        assert_clean_failure(&out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(
                "--shards applies only to `scale`, `scenario`, `recovery`, `frontier` and \
                 `distribution`"
            ),
            "`{cmd}` must refuse --shards through the shared gate, got: {stderr}"
        );
    }
}

#[test]
fn scenario_rejects_bad_preset_and_profile_cleanly() {
    let out = sbcast(&["scenario", "--preset", "atlantis"]);
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--preset"));
    let out = sbcast(&["scenario", "--profile", "huge"]);
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile"));
}

#[test]
fn scenario_is_shard_thread_and_agenda_invariant() {
    // A deliberately small stream (the binary under test is a debug
    // build): one preset, one scheme, 120 simulated minutes. The full
    // smoke profile runs in release under scripts/verify.sh.
    let dir = std::env::temp_dir().join(format!("sbcast-scenario-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for (shards, threads, agenda) in [("1", "1", "heap"), ("2", "4", "wheel"), ("4", "2", "heap")] {
        let json = dir.join(format!("scenario-{shards}-{threads}-{agenda}.json"));
        let out = sbcast(&[
            "scenario",
            "--profile",
            "smoke",
            "--preset",
            "urban",
            "--scheme",
            "SB:W=52",
            "--rate",
            "1.5",
            "--horizon",
            "120",
            "--flash-at",
            "40",
            "--outage-start",
            "45",
            "--outage-duration",
            "30",
            "--shards",
            shards,
            "--threads",
            threads,
            "--agenda",
            agenda,
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "scenario must run at {shards}/{threads}/{agenda}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outs.push((out.stdout, std::fs::read(&json).unwrap()));
    }
    for (stdout, json) in &outs[1..] {
        assert_eq!(
            &outs[0].0, stdout,
            "stdout must not depend on --shards/--threads/--agenda"
        );
        assert_eq!(
            &outs[0].1, json,
            "JSON must not depend on --shards/--threads/--agenda"
        );
    }
    let json = String::from_utf8_lossy(&outs[0].1);
    assert!(json.contains("demand_share"));
    assert!(json.contains("dynamic_report"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scale_is_shard_and_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("sbcast-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for (shards, threads) in [("1", "1"), ("2", "4"), ("4", "2")] {
        let json = dir.join(format!("scale-{shards}-{threads}.json"));
        let out = sbcast(&[
            "scale",
            "--sessions",
            "2000",
            "--horizon",
            "200",
            "--shards",
            shards,
            "--threads",
            threads,
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "scale must run at {shards}/{threads}");
        outs.push((out.stdout, std::fs::read(&json).unwrap()));
    }
    for (stdout, json) in &outs[1..] {
        assert_eq!(
            &outs[0].0, stdout,
            "stdout must not depend on --shards/--threads"
        );
        assert_eq!(
            &outs[0].1, json,
            "JSON must not depend on --shards/--threads"
        );
    }
    let json = String::from_utf8_lossy(&outs[0].1);
    assert!(json.contains("shard_peak_agenda"));
    assert!(json.contains("sessions_per_sim_second"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_rejects_bad_configs_with_typed_errors() {
    // A zero checkpoint cadence: caught by RunConfig::validate up front.
    let out = sbcast(&["recovery", "--cadence", "0"]);
    assert_clean_failure(&out);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checkpoint cadence is 0 sessions"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A chaos script aimed at a shard the run does not have.
    let out = sbcast(&["recovery", "--shards", "2", "--chaos", "kill:5@ckpt:1"]);
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr)
        .contains("chaos script targets shard 5, but the run has only 2 shard(s)"));
    // A malformed chaos spec item, named in the error.
    for (spec, what) in [
        ("corrupt:0@tick:9", "corruption targets checkpoints"),
        ("kill:1", "expected"),
        ("explode:1@tick:5", "unknown op"),
    ] {
        let out = sbcast(&["recovery", "--chaos", spec]);
        assert_clean_failure(&out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("bad chaos spec item") && stderr.contains(what),
            "spec {spec:?}: got {stderr}"
        );
    }
    // A bad mode.
    let out = sbcast(&["recovery", "--mode", "chaos-monkey"]);
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--mode"));
}

#[test]
fn recovery_under_chaos_matches_the_plain_run_for_every_knob() {
    // The flagship invariant through the CLI: the binary itself verifies
    // supervised-vs-uninterrupted byte identity (it exits nonzero on
    // divergence), and stdout must not depend on how the run executed.
    let mut outs = Vec::new();
    for (shards, threads, agenda) in [("1", "1", "heap"), ("2", "4", "wheel"), ("2", "2", "heap")] {
        let out = sbcast(&[
            "recovery",
            "--sessions",
            "1000",
            "--horizon",
            "100",
            "--cadence",
            "25",
            "--chaos",
            "kill:0@ckpt:1;corrupt:0@ckpt:2;kill:0@ckpt:2",
            "--shards",
            shards,
            "--threads",
            threads,
            "--agenda",
            agenda,
        ]);
        assert!(
            out.status.success(),
            "recovery must run at {shards}/{threads}/{agenda}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(
            stdout.contains("identical to uninterrupted execute: yes"),
            "the binary must verify the invariant, got: {stdout}"
        );
        assert!(stdout.contains("corrupt rejected 1"), "got: {stdout}");
        outs.push((shards, threads, agenda, out.stdout));
    }
    // Shard counts change the chaos targets' slices, so only runs with
    // equal --shards must agree byte-for-byte; threads/agenda never
    // matter.
    assert_eq!(
        outs[1].3, outs[2].3,
        "stdout must not depend on --threads/--agenda"
    );
}

#[test]
fn recovery_degrades_to_an_explicit_partial_run() {
    // Two kills against a one-restart budget: shard 1 is lost, and the
    // CLI reports the marker instead of panicking or silently shrinking.
    let out = sbcast(&[
        "recovery",
        "--sessions",
        "1000",
        "--horizon",
        "100",
        "--cadence",
        "25",
        "--shards",
        "2",
        "--chaos",
        "kill:1@ckpt:1;kill:1@ckpt:2",
        "--retry",
        "1",
        "--retry-attempts",
        "1",
    ]);
    assert!(
        out.status.success(),
        "a partial run is a graceful outcome: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PARTIAL RUN: 1 shard(s) lost"), "{stdout}");
    assert!(
        stdout.contains("shard 1: lost after 1 attempt(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("killed"), "{stdout}");
}

#[test]
fn throughput_writes_json_and_is_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("sbcast-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for threads in ["1", "2"] {
        let json = dir.join(format!("thr-{threads}.json"));
        let out = sbcast(&[
            "throughput",
            "--samples",
            "20",
            "--threads",
            threads,
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "throughput must run");
        outs.push((out.stdout, std::fs::read(&json).unwrap()));
    }
    assert_eq!(outs[0].0, outs[1].0, "stdout must not depend on --threads");
    assert_eq!(outs[0].1, outs[1].1, "JSON must not depend on --threads");
    let json = String::from_utf8_lossy(&outs[0].1);
    assert!(json.contains("peak_agenda"));
    assert!(json.contains("churn"));
    std::fs::remove_dir_all(&dir).ok();
}
