//! `sbcast` — plan, inspect and simulate periodic-broadcast schemes.
//!
//! ```text
//! sbcast plan     --scheme SB:W=52 --bandwidth 300      print the channel plan summary
//! sbcast metrics  --scheme all    --bandwidth 320       Table-1 metrics at one bandwidth
//! sbcast client   --scheme SB:W=52 --bandwidth 300 --arrival 7.3
//!                                                       one client session, with buffer profile
//! sbcast sweep    [--from 100 --to 600 --step 20 --threads 8 --samples 24]
//!                                                       the Figures 6/7/8 data + crosschecks
//! sbcast hybrid   --bandwidth 600 --titles 60 --rate 3  the §1 hybrid system
//! sbcast control  --bandwidth 300 --shift-at 150 --rotate 20
//!                                                       static vs dynamic channel
//!                                                       control under a popularity shift
//! sbcast resilience --horizon 200 --seeds 7 --threads 2 the fault study: schemes under
//!                                                       bursty loss/outages + recovery
//! sbcast throughput --samples 300 --threads 4           streaming-core throughput +
//!                                                       agenda-churn stress -> BENCH_throughput.json
//! sbcast scale    --shards 4 --threads 4                sharded scale-out: agenda footprint
//!                                                       and sim-time rates -> BENCH_scale.json
//! sbcast scenario --preset urban --shards 4             metropolitan scenario pack: regional
//!                                                       SB vs baselines, flash crowds,
//!                                                       correlated outages -> BENCH_scenario.json
//! sbcast recovery --shards 2 --cadence 50 --chaos "kill:1@ckpt:1"
//!                                                       crash-recovery supervision: checkpoint,
//!                                                       kill, restore, verify byte-identity;
//!                                                       --mode sweep -> BENCH_recovery.json
//! sbcast frontier --profile smoke --shards 2            the scheme-zoo Pareto frontier in
//!                                                       latency x client I/O x buffer,
//!                                                       analytic + simulated -> BENCH_frontier.json
//! ```
//!
//! Scheme names: `SB:W=<w>`, `SB:W=inf`, `PB:a`, `PB:b`, `PPB:a`, `PPB:b`,
//! `STAG`, or `all`.
//!
//! The study subcommands (`sweep`, `hybrid`, `control`, `resilience`,
//! `throughput`, `scale`, `scenario`, `recovery`, `frontier`) share one
//! execution-flag parser: `--threads N` sizes the worker pool (must be
//! ≥ 1; stdout and `--json` output are byte-identical for every N),
//! `--shards N` picks the scale-out shard count (`scale`, `scenario`,
//! `recovery` and `frontier` only; also result-invariant), `--seed` the
//! workload seed, `--json <path>` writes the structured report, and
//! `--manifest <path>` writes per-stage wall-clock timings.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::process::ExitCode;

use sb_analysis::lineup::{extended_lineup, SchemeId};
use sb_analysis::render::{render_evaluations, render_figure};
use sb_analysis::runner::{run_experiment, Experiment, Runner};
use sb_batching::{BatchPolicy, HybridConfig};
use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::series::Width;
use sb_sim::policy::schedule_client;
use sb_sim::AgendaKind;
use sb_workload::{Catalog, Patience, PoissonArrivals, ZipfPopularity};
use vod_units::{Mbps, Minutes};

fn usage() -> &'static str {
    "usage: sbcast <plan|metrics|client|sweep|hybrid|control|resilience|throughput|scale|scenario|recovery|frontier|series|hetero|pausing> [--key value]...\n\
     keys: --scheme --bandwidth --arrival --video --from --to --step\n\
           --titles --popular --rate --rates 1,2,4 --horizon --width --seed\n\
           --units 1,2,2,5,5 --k 10 --lengths 95,120,150\n\
           --shift-at --rotate --tick --half-life --hysteresis --ceiling\n\
           --retry --retry-factor --retry-attempts\n\
           --patience --fraction --seeds 11,23,47\n\
           --loss-rates 0.01,0.05 --burst-len 4\n\
           --outage-channel --outage-start --outage-duration\n\
           --threads N --shards N --sessions N --videos N --samples N\n\
           --preset urban|rural|remote|all --profile smoke|paper\n\
           --flash-at --flash-boost\n\
           --mode run|sweep --cadence N --kills N\n\
           --bandwidths 200,320 --catalogs 10,20 --buggy-hb yes\n\
           --chaos 'kill:1@ckpt:1;kill:0@tick:500;corrupt:1@ckpt:2'\n\
           --agenda heap|wheel --json PATH --metrics PATH --manifest PATH"
}

fn parse_scheme(name: &str) -> Option<SchemeId> {
    match name {
        "PB:a" => Some(SchemeId::PbA),
        "PB:b" => Some(SchemeId::PbB),
        "PPB:a" => Some(SchemeId::PpbA),
        "PPB:b" => Some(SchemeId::PpbB),
        "STAG" => Some(SchemeId::Staggered),
        s if s.starts_with("SB:W=") => {
            let w = &s["SB:W=".len()..];
            if w == "inf" {
                Some(SchemeId::Sb(None))
            } else {
                w.parse::<u64>().ok().map(|w| SchemeId::Sb(Some(w)))
            }
        }
        _ => None,
    }
}

struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --key, got `{k}`"))?;
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), v.clone());
        }
        Ok(Self(map))
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer `{v}`")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn schemes_from(opt: &str) -> Result<Vec<SchemeId>, String> {
    if opt == "all" {
        Ok(extended_lineup())
    } else {
        parse_scheme(opt)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown scheme `{opt}`"))
    }
}

fn cmd_plan(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 300.0)?;
    let ids = schemes_from(&opts.get_str("scheme", "SB:W=52"))?;
    let cfg = SystemConfig::paper_defaults(Mbps(b));
    for id in ids {
        let scheme = id.build();
        match scheme.plan(&cfg) {
            Ok(plan) => {
                println!(
                    "{}: {} channels, {} total",
                    plan.scheme,
                    plan.channels.len(),
                    plan.total_bandwidth()
                );
                let mut by_rate: HashMap<String, usize> = HashMap::new();
                for ch in &plan.channels {
                    *by_rate.entry(format!("{:.3}", ch.rate)).or_default() += 1;
                }
                let mut rates: Vec<_> = by_rate.into_iter().collect();
                rates.sort();
                for (rate, n) in rates {
                    println!("  {n} channel(s) at {rate}");
                }
                let sizes = &plan.segment_sizes[0];
                println!("  per-video fragments: {}", sizes.len());
                for (i, s) in sizes.iter().enumerate().take(8) {
                    println!(
                        "    segment {i}: {:.1} ({:.2} min at display rate)",
                        s,
                        s.value() / (1.5 * 60.0)
                    );
                }
                if sizes.len() > 8 {
                    println!("    … {} more", sizes.len() - 8);
                }
            }
            Err(e) => println!("{}: infeasible here ({e})", scheme.name()),
        }
    }
    Ok(())
}

fn cmd_metrics(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 320.0)?;
    let ids = schemes_from(&opts.get_str("scheme", "all"))?;
    let rows = sb_analysis::tables::evaluate_tables(&ids, &[b]);
    print!("{}", render_evaluations(&rows));
    Ok(())
}

fn cmd_client(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 300.0)?;
    let arrival = Minutes(opts.get_f64("arrival", 0.0)?);
    let video = VideoId(opts.get_usize("video", 0)?);
    let id = parse_scheme(&opts.get_str("scheme", "SB:W=52"))
        .ok_or_else(|| "unknown scheme".to_string())?;
    let cfg = SystemConfig::paper_defaults(Mbps(b));
    let scheme = id.build();
    let plan = scheme.plan(&cfg).map_err(|e| e.to_string())?;
    let policy = sb_analysis::crosscheck::policy_for(id);
    let s = schedule_client(&plan, video, arrival, cfg.display_rate, policy)
        .map_err(|e| e.to_string())?;
    println!("scheme {}   arrival {:.3}", plan.scheme, arrival);
    println!(
        "playback starts {:.4} (latency {:.4})",
        s.playback_start,
        s.startup_latency()
    );
    println!("downloads:");
    for d in &s.downloads {
        println!(
            "  seg {:>2}  ch {:>4}  [{:>9.4} .. {:>9.4}] min at {}",
            d.item.segment,
            d.channel,
            d.start.value(),
            d.end().value(),
            d.rate
        );
    }
    println!(
        "peak buffer {:.1} = {:.1}",
        s.peak_buffer(),
        s.peak_buffer().to_mbytes()
    );
    println!("max concurrent streams {}", s.max_concurrent_downloads());
    let jv = s.jitter_violations(1e-9);
    println!("jitter violations: {}", jv.len());
    Ok(())
}

/// The execution flags every study subcommand shares — `--threads`,
/// `--seed`, `--shards`, `--agenda`, `--json`, `--manifest` — parsed and
/// validated by one routine so `sweep`, `control`, `resilience`,
/// `throughput` and `scale` reject bad values with identical messages.
struct CommonArgs {
    /// Worker-pool size (validated ≥ 1; results never depend on it).
    threads: usize,
    /// `--seed`, when given (each study applies its own default).
    seed: Option<u64>,
    /// Shard count (validated ≥ 1; only `scale`, `scenario`, `recovery`
    /// and `frontier` accept > 1).
    shards: usize,
    /// Engine event-store backend (`heap` or `wheel`; results never
    /// depend on it).
    agenda: AgendaKind,
    /// `--json <path>`: where to write the structured report.
    json: Option<String>,
    /// `--manifest <path>`: where to write per-stage wall timings.
    manifest: Option<String>,
}

impl CommonArgs {
    fn parse(opts: &Opts) -> Result<Self, String> {
        let threads = opts.get_usize("threads", 1)?;
        if threads == 0 {
            return Err("--threads must be at least 1 (got 0)".into());
        }
        let shards = opts.get_usize("shards", 1)?;
        if shards == 0 {
            return Err("--shards must be at least 1 (got 0)".into());
        }
        let seed = match opts.0.get("seed") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("--seed: bad integer `{v}`"))?,
            ),
        };
        let agenda_str = opts.get_str("agenda", "heap");
        let agenda = AgendaKind::parse(&agenda_str)
            .ok_or_else(|| format!("--agenda: expected `heap` or `wheel`, got `{agenda_str}`"))?;
        Ok(Self {
            threads,
            seed,
            shards,
            agenda,
            json: opts.0.get("json").cloned(),
            manifest: opts.0.get("manifest").cloned(),
        })
    }

    /// The worker pool this invocation asked for, driving the engine
    /// backend it asked for.
    fn runner(&self) -> Runner {
        Runner::new(self.threads).with_agenda(self.agenda)
    }

    /// Studies that are not sharded refuse the scale-out flag instead of
    /// silently ignoring it; `scale`, `scenario`, `recovery` and
    /// `frontier` are the subcommands whose engines shard, so they skip
    /// this gate.
    fn reject_shards(&self, cmd: &str) -> Result<(), String> {
        if self.shards > 1 {
            return Err(format!(
                "--shards applies only to `scale`, `scenario`, `recovery` and `frontier` \
                 (got {} for `{cmd}`)",
                self.shards
            ));
        }
        Ok(())
    }

    /// Write `value` as pretty JSON if `--json` was given.
    fn maybe_write_json<T: serde::Serialize>(&self, value: &T) -> Result<(), String> {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("--json {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(())
    }
}

/// Print per-stage timings to stderr and honour `--manifest`. Timings
/// never touch stdout, so results stay byte-identical across `--threads`.
fn finish_runner(common: &CommonArgs, runner: &Runner) -> Result<(), String> {
    let manifest = runner.manifest();
    eprint!("{}", manifest.summary());
    if let Some(path) = &common.manifest {
        let json = serde_json::to_string_pretty(&manifest).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--manifest {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    let from = opts.get_f64("from", 100.0)?;
    let to = opts.get_f64("to", 600.0)?;
    let step = opts.get_f64("step", 20.0)?;
    let samples = opts.get_usize("samples", 24)?;
    let common = CommonArgs::parse(opts)?;
    common.reject_shards("sweep")?;
    let seed = common.seed.unwrap_or(0);
    let ids = schemes_from(&opts.get_str("scheme", "all"))?;
    if !(step > 0.0 && to >= from) {
        return Err(format!("bad sweep range: from {from} to {to} step {step}"));
    }
    let runner = common.runner();
    let exp = Experiment::over_range("sweep", ids.clone(), from, to, step).with_seed(seed);
    let report = run_experiment(&exp, Minutes(15.0), samples, &runner);
    for (fig, name) in [
        (sb_analysis::figures::figure7(&report.rows, &ids), "latency"),
        (
            sb_analysis::figures::figure6(&report.rows, &ids),
            "disk bandwidth",
        ),
        (sb_analysis::figures::figure8(&report.rows, &ids), "storage"),
    ] {
        println!("--- {name} ---");
        print!("{}", render_figure(&fig));
        println!();
    }
    if !report.checks.is_empty() {
        let worst_latency = report
            .checks
            .iter()
            .map(|c| c.latency_ratio())
            .fold(0.0f64, f64::max);
        let worst_buffer = report
            .checks
            .iter()
            .map(|c| c.buffer_ratio())
            .fold(0.0f64, f64::max);
        println!(
            "--- crosscheck: {} (scheme, bandwidth) points × {samples} simulated arrivals (seed {seed}) ---",
            report.checks.len()
        );
        println!("worst simulated/analytic latency ratio: {worst_latency:.4} (must be <= 1)");
        println!("worst simulated/analytic buffer  ratio: {worst_buffer:.4} (must be <= 1)");
    }
    common.maybe_write_json(&report)?;
    finish_runner(&common, &runner)
}

fn cmd_hybrid(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 600.0)?;
    let titles = opts.get_usize("titles", 60)?;
    let popular = opts.get_usize("popular", 10)?;
    let rate = opts.get_f64("rate", 3.0)?;
    let horizon = opts.get_f64("horizon", 600.0)?;
    let width = opts.get_usize("width", 52)? as u64;
    let common = CommonArgs::parse(opts)?;
    common.reject_shards("hybrid")?;
    let seed = common.seed.unwrap_or(42);
    if let Some(spec) = opts.0.get("rates") {
        // Study mode: hybrid vs pure batching over a list of arrival
        // rates, one simulated point per rate, through the runner.
        let rates: Vec<f64> = spec
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad rate `{t}`")))
            .collect::<Result<_, _>>()?;
        let runner = common.runner();
        let cfg = sb_analysis::hybrid_study::StudyConfig {
            titles,
            popular,
            bandwidth: Mbps(b),
            width,
            broadcast_fraction: 0.5,
            horizon: Minutes(horizon),
            mean_patience: Minutes(8.0),
            seed,
        };
        let points = sb_analysis::hybrid_study::throughput_study_with(cfg, &rates, &runner);
        println!("hybrid vs pure batching: {titles} titles, {popular} broadcast, B = {b} Mb/s");
        println!(
            "{:>8} {:>9} {:>11} {:>12} {:>13} {:>14}",
            "rate/min", "requests", "pure served", "pure renege", "hybrid served", "hybrid renege"
        );
        for p in &points {
            println!(
                "{:>8.1} {:>9} {:>11} {:>11.1}% {:>13} {:>13.1}%",
                p.rate_per_minute,
                p.requests,
                p.pure_served,
                p.pure_renege_rate * 100.0,
                p.hybrid_served,
                p.hybrid_renege_rate * 100.0
            );
        }
        if let Some(first) = points.first() {
            println!(
                "broadcast worst latency (rate-independent): {:.3}",
                first.broadcast_worst_latency
            );
        }
        common.maybe_write_json(&points)?;
        return finish_runner(&common, &runner);
    }
    let catalog = Catalog::paper_defaults(titles);
    let requests = PoissonArrivals::new(rate, seed)
        .with_patience(Patience::Exponential(Minutes(8.0)))
        .generate(&ZipfPopularity::paper(titles), Minutes(horizon));
    let cfg = HybridConfig {
        total_bandwidth: Mbps(b),
        popular,
        width: Width::capped_lossy(width),
        policy: BatchPolicy::Mql,
        broadcast_fraction: 0.5,
    };
    let report = cfg.run(&catalog, &requests).map_err(|e| e.to_string())?;
    println!("hybrid server: {titles} titles, {popular} broadcast, B = {b} Mb/s");
    println!("requests: {}", requests.len());
    println!(
        "broadcast half : {} channels, worst latency {:.3}, {} requests ({} impatient)",
        report.broadcast_channels,
        report.broadcast_worst_latency,
        report.broadcast_requests,
        report.broadcast_impatient
    );
    println!(
        "multicast half : {} channels, served {} / reneged {} (renege rate {:.1}%), mean wait {:.2}, mean batch {:.2}",
        report.multicast_channels,
        report.multicast.served,
        report.multicast.reneged,
        report.multicast.renege_rate() * 100.0,
        report.multicast.mean_wait,
        report.multicast.mean_batch_size
    );
    Ok(())
}

/// Static vs dynamic channel control under a popularity shift: the same
/// request streams through [`sb_control::ControlledSim`] twice, once per
/// [`sb_control::ControlPolicy`].
/// Parse the admission-backoff flags: `--retry <base-minutes>` enables
/// deferral; `--retry-factor` (default 2) and `--retry-attempts`
/// (default 5) shape the exponential schedule.
fn parse_backoff(opts: &Opts) -> Result<Option<sb_control::Backoff>, String> {
    let Some(base) = opts.0.get("retry") else {
        return Ok(None);
    };
    let base: f64 = base
        .parse()
        .map_err(|_| format!("--retry: bad number `{base}`"))?;
    let factor = opts.get_f64("retry-factor", 2.0)?;
    let attempts = opts.get_usize("retry-attempts", 5)? as u32;
    sb_control::Backoff::new(Minutes(base), factor, attempts)
        .map(Some)
        .map_err(|e| e.to_string())
}

fn cmd_control(opts: &Opts) -> Result<(), String> {
    use sb_analysis::control_study::{render_shift_study, shift_study, ShiftStudyConfig};
    use sb_control::ControlConfig;

    let titles = opts.get_usize("titles", 40)?;
    let control = ControlConfig {
        titles,
        hot_slots: opts.get_usize("popular", 8)?,
        total_bandwidth: Mbps(opts.get_f64("bandwidth", 300.0)?),
        broadcast_fraction: opts.get_f64("fraction", 0.6)?,
        width: Width::capped_lossy(opts.get_usize("width", 52)? as u64),
        batch: BatchPolicy::Mql,
        tick: Minutes(opts.get_f64("tick", 15.0)?),
        half_life: Minutes(opts.get_f64("half-life", 45.0)?),
        hysteresis: opts.get_f64("hysteresis", 0.1)?,
        admission_ceiling: opts.get_f64("ceiling", 3.0)?,
        admission_retry: parse_backoff(opts)?,
    };
    let seeds: Vec<u64> = opts
        .get_str("seeds", "11,23,47")
        .split(',')
        .map(|t| t.trim().parse().map_err(|_| format!("bad seed `{t}`")))
        .collect::<Result<_, _>>()?;
    let cfg = ShiftStudyConfig {
        control,
        rate: opts.get_f64("rate", 6.0)?,
        horizon: Minutes(opts.get_f64("horizon", 600.0)?),
        shift_at: Minutes(opts.get_f64("shift-at", 150.0)?),
        rotate: opts.get_usize("rotate", titles / 2)?,
        mean_patience: Minutes(opts.get_f64("patience", 45.0)?),
        seeds,
    };
    let common = CommonArgs::parse(opts)?;
    common.reject_shards("control")?;
    let runner = common.runner();
    let (study, snapshot) = shift_study(&cfg, &runner).map_err(|e| e.to_string())?;
    print!("{}", render_shift_study(&study));
    common.maybe_write_json(&study)?;
    if let Some(path) = opts.0.get("metrics") {
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_runner(&common, &runner)
}

/// The fault study: every scheme under i.i.d. and bursty loss at equal
/// mean rates plus a mid-run channel outage, and the control plane's
/// recovery from the same script under static vs dynamic control.
fn cmd_resilience(opts: &Opts) -> Result<(), String> {
    use sb_analysis::resilience_study::{
        render_resilience_study, resilience_study, ResilienceStudyConfig,
    };
    use sb_resilience::{ChannelOutage, FaultScript};

    let mut cfg = ResilienceStudyConfig::paper_defaults();
    cfg.bandwidth = Mbps(opts.get_f64("bandwidth", 320.0)?);
    cfg.horizon = Minutes(opts.get_f64("horizon", 200.0)?);
    cfg.samples = opts.get_usize("samples", 24)?;
    cfg.burst_len = opts.get_f64("burst-len", 4.0)?;
    if let Some(spec) = opts.0.get("loss-rates") {
        cfg.loss_rates = spec
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad loss rate `{t}`")))
            .collect::<Result<_, _>>()?;
    }
    cfg.seeds = opts
        .get_str("seeds", "11,23,47")
        .split(',')
        .map(|t| t.trim().parse().map_err(|_| format!("bad seed `{t}`")))
        .collect::<Result<_, _>>()?;
    cfg.script = FaultScript {
        outages: vec![ChannelOutage {
            channel: opts.get_usize("outage-channel", 0)?,
            start: Minutes(opts.get_f64("outage-start", 60.0)?),
            duration: Minutes(opts.get_f64("outage-duration", 25.0)?),
        }],
        ..FaultScript::none()
    };
    cfg.rate = opts.get_f64("rate", 6.0)?;
    cfg.mean_patience = Minutes(opts.get_f64("patience", 45.0)?);
    cfg.control.admission_retry = parse_backoff(opts)?;

    let common = CommonArgs::parse(opts)?;
    common.reject_shards("resilience")?;
    let runner = common.runner();
    let (study, snapshot) = resilience_study(&cfg, &runner).map_err(|e| e.to_string())?;
    print!("{}", render_resilience_study(&study));
    common.maybe_write_json(&study)?;
    if let Some(path) = opts.0.get("metrics") {
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_runner(&common, &runner)
}

/// Streaming-core throughput: per-scheme engine/agenda accounting on the
/// [`sb_sim::StreamingFold`] path plus the cancel-heavy churn stress.
/// Writes `BENCH_throughput.json` (override with `--json`); the JSON and
/// stdout are byte-identical across `--threads` counts, wall-clock rates
/// go to stderr.
fn cmd_throughput(opts: &Opts) -> Result<(), String> {
    use sb_analysis::throughput::{render_throughput, throughput_study, ThroughputConfig};

    let mut cfg = ThroughputConfig::paper_defaults();
    cfg.bandwidth = Mbps(opts.get_f64("bandwidth", cfg.bandwidth.value())?);
    cfg.schemes = match opts.0.get("scheme") {
        None => cfg.schemes,
        Some(s) => schemes_from(s)?,
    };
    cfg.sessions = opts.get_usize("samples", cfg.sessions)?;
    cfg.horizon = Minutes(opts.get_f64("horizon", cfg.horizon.value())?);
    cfg.churn_cancels = opts.get_usize("churn-cancels", cfg.churn_cancels as usize)? as u64;

    let common = CommonArgs::parse(opts)?;
    common.reject_shards("throughput")?;
    cfg.seed = common.seed.unwrap_or(cfg.seed);
    let runner = common.runner();
    let t0 = std::time::Instant::now();
    let (report, snapshot) = throughput_study(&cfg, &runner).map_err(|e| e.to_string())?;
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", render_throughput(&report));
    let churn_events = report.churn.engine.fired + report.churn.engine.cancelled;
    eprintln!(
        "wall: {:.3}s, {:.0} sessions/sec, {:.0} events/sec",
        wall,
        report.total_sessions as f64 / wall,
        (report.total_events_fired + churn_events) as f64 / wall,
    );
    let path = common
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("--json {path}: {e}"))?;
    eprintln!("wrote {path}");
    if let Some(path) = opts.0.get("metrics") {
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_runner(&common, &runner)
}

/// Sharded scale-out: per-shard agenda footprint and simulated-time
/// rates at every grid shard count, a [`sb_analysis::scale_study`] run.
/// Writes `BENCH_scale.json` (override with `--json`); stdout and the
/// JSON are byte-identical for every `--shards` and `--threads`
/// combination — the flagship pass contributes only shard-invariant
/// fields. Wall-clock rates go to stderr.
fn cmd_scale(opts: &Opts) -> Result<(), String> {
    use sb_analysis::scale_study::{render_scale, scale_study, ScaleConfig};

    let mut cfg = ScaleConfig::paper_defaults();
    cfg.bandwidth = Mbps(opts.get_f64("bandwidth", cfg.bandwidth.value())?);
    cfg.sessions = opts.get_usize("sessions", cfg.sessions)?;
    cfg.horizon = Minutes(opts.get_f64("horizon", cfg.horizon.value())?);
    cfg.videos = opts.get_usize("videos", cfg.videos)?;

    let common = CommonArgs::parse(opts)?;
    cfg.seed = common.seed.unwrap_or(cfg.seed);
    let runner = common.runner();
    let t0 = std::time::Instant::now();
    let (report, snapshot) =
        scale_study(&cfg, common.shards, &runner).map_err(|e| e.to_string())?;
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", render_scale(&report));
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {}, {:.0} sessions/sec over the grid",
        wall,
        common.shards,
        runner.threads(),
        (report.total_sessions * (report.cells.len() + 1)) as f64 / wall,
    );
    let path = common
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("--json {path}: {e}"))?;
    eprintln!("wrote {path}");
    if let Some(path) = opts.0.get("metrics") {
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_runner(&common, &runner)
}

/// The metropolitan scenario pack: per-region-class SB vs baselines on
/// clustered geography, plus the premiere flash crowd, the correlated
/// regional outage and the diurnal × density cell, a
/// [`sb_analysis::scenario_study`] run. Writes `BENCH_scenario.json`
/// (override with `--json`); stdout and the JSON are byte-identical for
/// every `--shards` × `--threads` × `--agenda` combination — the
/// flagship pass contributes only shard-invariant fields. Wall-clock
/// rates go to stderr.
fn cmd_scenario(opts: &Opts) -> Result<(), String> {
    use sb_analysis::scenario_study::{render_scenario, scenario_study, ScenarioStudyConfig};
    use sb_workload::ScenarioPreset;

    let profile = opts.get_str("profile", "paper");
    let mut cfg = match profile.as_str() {
        "paper" => ScenarioStudyConfig::paper_defaults(),
        "smoke" => ScenarioStudyConfig::smoke(),
        other => {
            return Err(format!(
                "--profile: expected `smoke` or `paper`, got `{other}`"
            ))
        }
    };
    let preset = opts.get_str("preset", "all");
    cfg.presets = match preset.as_str() {
        "all" => cfg.presets,
        "urban" => vec![ScenarioPreset::Urban],
        "rural" => vec![ScenarioPreset::Rural],
        "remote" => vec![ScenarioPreset::Remote],
        other => {
            return Err(format!(
                "--preset: expected `urban`, `rural`, `remote` or `all`, got `{other}`"
            ))
        }
    };
    if let Some(s) = opts.0.get("scheme") {
        cfg.schemes = schemes_from(s)?;
    }
    cfg.rate = opts.get_f64("rate", cfg.rate)?;
    cfg.horizon = Minutes(opts.get_f64("horizon", cfg.horizon.value())?);
    cfg.mean_patience = Minutes(opts.get_f64("patience", cfg.mean_patience.value())?);
    cfg.flash_at = Minutes(opts.get_f64("flash-at", cfg.flash_at.value())?);
    cfg.flash_rate_boost = opts.get_f64("flash-boost", cfg.flash_rate_boost)?;
    cfg.outage_start = Minutes(opts.get_f64("outage-start", cfg.outage_start.value())?);
    cfg.outage_duration = Minutes(opts.get_f64("outage-duration", cfg.outage_duration.value())?);

    let common = CommonArgs::parse(opts)?;
    cfg.seed = common.seed.unwrap_or(cfg.seed);
    let runner = common.runner();
    let t0 = std::time::Instant::now();
    let (report, snapshot) =
        scenario_study(&cfg, common.shards, &runner).map_err(|e| e.to_string())?;
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", render_scenario(&report));
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {}, {:.0} sessions/sec",
        wall,
        common.shards,
        runner.threads(),
        report.total_sessions as f64 / wall,
    );
    let path = common
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_scenario.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("--json {path}: {e}"))?;
    eprintln!("wrote {path}");
    if let Some(path) = opts.0.get("metrics") {
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_runner(&common, &runner)
}

/// One missing-shard marker, serialized for `--json`.
#[derive(serde::Serialize)]
struct MissingShardJson {
    shard: usize,
    attempts: u32,
    last_error: String,
}

/// The `recovery run` report, serialized for `--json`.
#[derive(serde::Serialize)]
struct RecoveryRunJson {
    sessions_merged: usize,
    complete: bool,
    identical: bool,
    crashes_injected: u64,
    restores: u64,
    corrupt_rejected: u64,
    replayed_sessions: u64,
    checkpoints: u64,
    recovery_delay_min: f64,
    missing: Vec<MissingShardJson>,
}

/// Crash-recovery supervision. `--mode run` (the default) executes one
/// supervised run under an explicit `--chaos` script and re-verifies the
/// byte-identity invariant against a plain `execute`; `--mode sweep`
/// runs the checkpoint-cadence study → `BENCH_recovery.json`. Both are
/// byte-identical across `--threads`, `--shards` and `--agenda`.
fn cmd_recovery(opts: &Opts) -> Result<(), String> {
    use sb_analysis::recovery_study::{recovery_study, render_recovery, RecoveryConfig};
    use sb_resilience::{Backoff, CrashScript, Recovered, RunSpec, Supervisor};
    use sb_sim::policy::ClientPolicy;
    use sb_sim::system::{Request, SystemSim};
    use sb_sim::RunConfig;
    use sb_workload::GridArrivals;

    let common = CommonArgs::parse(opts)?;
    let runner = common.runner();
    let mode = opts.get_str("mode", "run");

    if mode == "sweep" {
        let mut cfg = match opts.get_str("profile", "paper").as_str() {
            "paper" => RecoveryConfig::paper_defaults(),
            "smoke" => RecoveryConfig::smoke(),
            other => {
                return Err(format!(
                    "--profile: expected `smoke` or `paper`, got `{other}`"
                ))
            }
        };
        cfg.bandwidth = Mbps(opts.get_f64("bandwidth", cfg.bandwidth.value())?);
        cfg.sessions = opts.get_usize("sessions", cfg.sessions)?;
        cfg.horizon = Minutes(opts.get_f64("horizon", cfg.horizon.value())?);
        cfg.videos = opts.get_usize("titles", cfg.videos)?;
        cfg.kills = opts.get_usize("kills", cfg.kills)?;
        cfg.seed = common.seed.unwrap_or(cfg.seed);
        if common.shards > 1 {
            cfg.shards = common.shards;
        }
        let report = recovery_study(&cfg, &runner).map_err(|e| e.to_string())?;
        print!("{}", render_recovery(&report));
        let path = common
            .json
            .clone()
            .unwrap_or_else(|| "BENCH_recovery.json".to_string());
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("--json {path}: {e}"))?;
        eprintln!("wrote {path}");
        return finish_runner(&common, &runner);
    }
    if mode != "run" {
        return Err(format!("--mode: expected `run` or `sweep`, got `{mode}`"));
    }

    let bandwidth = Mbps(opts.get_f64("bandwidth", 320.0)?);
    let sessions = opts.get_usize("sessions", 2_000)?;
    let titles = opts.get_usize("titles", 10)?;
    let horizon = Minutes(opts.get_f64("horizon", 200.0)?);
    let cadence = opts.get_usize("cadence", 50)? as u64;
    let seed = common.seed.unwrap_or(17);
    let chaos = CrashScript::parse(&opts.get_str("chaos", "")).map_err(|e| e.to_string())?;
    let backoff = parse_backoff(opts)?
        .map_or_else(|| Backoff::new(Minutes(1.0), 2.0, 8), Ok)
        .map_err(|e| e.to_string())?;

    let id = parse_scheme(&opts.get_str("scheme", "SB:W=52"))
        .ok_or_else(|| format!("unknown scheme `{}`", opts.get_str("scheme", "SB:W=52")))?;
    let sys = SystemConfig::paper_defaults(bandwidth);
    let plan = id.build().plan(&sys).map_err(|e| e.to_string())?;
    let requests: Vec<Request> = GridArrivals {
        sessions,
        horizon,
        titles: titles.min(plan.num_videos().max(1)),
        patience: Patience::Infinite,
        seed,
    }
    .generate()
    .into_iter()
    .map(|w| Request {
        at: w.at,
        video: VideoId(w.video),
    })
    .collect();

    // Up-front validation: a zero cadence or an out-of-range partition
    // is a typed error before anything runs.
    let run_cfg = RunConfig::new(&requests)
        .shards(common.shards)
        .threads(common.threads)
        .seed(seed)
        .agenda(common.agenda)
        .checkpoint_every(cadence);
    run_cfg.validate().map_err(|e| e.to_string())?;
    let supervisor = Supervisor::new(backoff, cadence).map_err(|e| e.to_string())?;

    let sim = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible);
    let baseline = sim.execute(run_cfg).map_err(|e| e.to_string())?;
    let spec = RunSpec {
        shards: common.shards,
        threads: common.threads,
        seed,
        agenda: common.agenda,
        partition: None,
    };
    let recovered = supervisor
        .run(&sim, &requests, &spec, &chaos)
        .map_err(|e| e.to_string())?;

    let bytes = |o: &sb_sim::RunOutcome| {
        serde_json::to_string(&(&o.summary, &o.fold, &o.snapshot)).expect("outcomes serialize")
    };
    let stats = *recovered.stats();
    let complete = matches!(recovered, Recovered::Complete { .. });
    let identical = complete && bytes(&baseline) == bytes(recovered.outcome());
    println!(
        "recovery run: {} at {} Mb/s, {} sessions on {} shard(s), cadence {}",
        id.label(),
        bandwidth.value(),
        sessions,
        common.shards,
        cadence,
    );
    println!(
        "chaos: {} event(s); crashes {}, restores {}, corrupt rejected {}, \
         replayed {}, checkpoints {}, modeled delay {:.1} min",
        chaos.events().len(),
        stats.crashes_injected,
        stats.restores,
        stats.corrupt_rejected,
        stats.replayed_sessions,
        stats.checkpoints_taken,
        stats.recovery_delay.value(),
    );
    println!(
        "sessions merged: {} of {}",
        recovered.outcome().summary.sessions,
        baseline.summary.sessions,
    );
    let missing: Vec<MissingShardJson> = match &recovered {
        Recovered::Complete { .. } => {
            println!(
                "identical to uninterrupted execute: {}",
                if identical { "yes" } else { "NO" }
            );
            Vec::new()
        }
        Recovered::Partial(p) => {
            println!("PARTIAL RUN: {} shard(s) lost", p.missing.len());
            for m in &p.missing {
                println!(
                    "  shard {}: lost after {} attempt(s): {}",
                    m.shard, m.attempts, m.last_error
                );
            }
            p.missing
                .iter()
                .map(|m| MissingShardJson {
                    shard: m.shard,
                    attempts: m.attempts,
                    last_error: m.last_error.clone(),
                })
                .collect()
        }
    };
    common.maybe_write_json(&RecoveryRunJson {
        sessions_merged: recovered.outcome().summary.sessions,
        complete,
        identical,
        crashes_injected: stats.crashes_injected,
        restores: stats.restores,
        corrupt_rejected: stats.corrupt_rejected,
        replayed_sessions: stats.replayed_sessions,
        checkpoints: stats.checkpoints_taken,
        recovery_delay_min: stats.recovery_delay.value(),
        missing,
    })?;
    if !identical && complete {
        return Err("supervised run diverged from the uninterrupted baseline".into());
    }
    Ok(())
}

/// The automated Pareto frontier: every scheme in the zoo (SB expanded
/// over its candidate widths) across a bandwidth × catalog grid, each
/// point marked for dominance in latency × client-I/O × buffer both
/// analytically and from simulated sessions — a [`sb_analysis::frontier`]
/// run. Writes `BENCH_frontier.json` (override with `--json`); stdout
/// and the JSON are byte-identical for every `--shards` × `--threads` ×
/// `--agenda` combination. Wall-clock goes to stderr.
fn cmd_frontier(opts: &Opts) -> Result<(), String> {
    use sb_analysis::frontier::{frontier_report, render_frontier, FrontierConfig};

    let profile = opts.get_str("profile", "paper");
    let mut cfg = match profile.as_str() {
        "paper" => FrontierConfig::paper(),
        "smoke" => FrontierConfig::smoke(),
        other => {
            return Err(format!(
                "--profile: expected `smoke` or `paper`, got `{other}`"
            ))
        }
    };
    if let Some(spec) = opts.0.get("bandwidths") {
        cfg.bandwidths = spec
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad bandwidth `{t}`")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(spec) = opts.0.get("catalogs") {
        cfg.catalogs = spec
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| format!("bad catalog size `{t}`"))
            })
            .collect::<Result<_, _>>()?;
    }
    cfg.sessions = opts.get_usize("sessions", cfg.sessions)?;
    cfg.horizon = Minutes(opts.get_f64("horizon", cfg.horizon.value())?);
    cfg.include_buggy_hb = opts.get_str("buggy-hb", "no") != "no";

    let common = CommonArgs::parse(opts)?;
    cfg.seed = common.seed.unwrap_or(cfg.seed);
    let runner = common.runner();
    let t0 = std::time::Instant::now();
    let report = frontier_report(&cfg, common.shards, &runner);
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", render_frontier(&report));
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {}",
        wall,
        common.shards,
        runner.threads(),
    );
    let path = common
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_frontier.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("--json {path}: {e}"))?;
    eprintln!("wrote {path}");
    finish_runner(&common, &runner)
}

fn cmd_series(opts: &Opts) -> Result<(), String> {
    use sb_core::custom::{greedy_max_series, validate_units, PhaseBudget};
    let budget = PhaseBudget::ExhaustiveUpTo(100_000);
    if let Some(spec) = opts.0.get("units") {
        let units: Vec<u64> = spec
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad unit `{t}`")))
            .collect::<Result<_, _>>()?;
        match validate_units(&units, budget) {
            Ok(()) => {
                println!("series {units:?} is VALID for the two-loader client");
                let total: u64 = units.iter().sum();
                println!(
                    "  latency for a 120-min video: {:.4} min",
                    120.0 / total as f64
                );
            }
            Err(v) => println!("series {units:?} is INVALID: {v}"),
        }
        Ok(())
    } else {
        let k = opts.get_usize("k", 10)?;
        let found = greedy_max_series(k, budget);
        println!("fastest two-loader-safe series of {k} fragments:");
        println!("  {found:?}");
        println!(
            "  (the paper's series: {:?})",
            sb_core::series::series(k.min(40))
        );
        Ok(())
    }
}

fn cmd_hetero(opts: &Opts) -> Result<(), String> {
    use sb_core::heterogeneous::{plan_heterogeneous, HeteroVideo};
    let b = opts.get_f64("bandwidth", 300.0)?;
    let width = opts.get_usize("width", 52)? as u64;
    let lengths = opts.get_str("lengths", "95,120,150,87,133");
    let videos: Vec<HeteroVideo> = lengths
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map(|m| HeteroVideo { length: Minutes(m) })
                .map_err(|_| format!("bad length `{t}`"))
        })
        .collect::<Result<_, _>>()?;
    let hp = plan_heterogeneous(Mbps(b), Mbps(1.5), &videos, Width::capped_lossy(width))
        .map_err(|e| e.to_string())?;
    println!(
        "heterogeneous SB plan: {} videos × {} channels, {} total",
        videos.len(),
        hp.channels_per_video,
        hp.plan.total_bandwidth()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "video", "length(min)", "latency(min)", "buffer(MB)"
    );
    for (v, pv) in hp.per_video.iter().enumerate() {
        println!(
            "{v:>6} {:>12.0} {:>14.4} {:>12.1}",
            videos[v].length.value(),
            pv.metrics.access_latency.value(),
            pv.metrics.buffer_requirement.to_mbytes().value()
        );
    }
    Ok(())
}

fn cmd_pausing(opts: &Opts) -> Result<(), String> {
    use sb_sim::pausing::schedule_pausing_client;
    let b = opts.get_f64("bandwidth", 320.0)?;
    let arrival = Minutes(opts.get_f64("arrival", 0.0)?);
    let id = parse_scheme(&opts.get_str("scheme", "PPB:b"))
        .ok_or_else(|| "unknown scheme".to_string())?;
    if !matches!(id, SchemeId::PpbA | SchemeId::PpbB) {
        return Err("pausing clients exist only for PPB (scheme PPB:a or PPB:b)".into());
    }
    let cfg = SystemConfig::paper_defaults(Mbps(b));
    let scheme = id.build();
    let plan = scheme.plan(&cfg).map_err(|e| e.to_string())?;
    let s = schedule_pausing_client(&plan, VideoId(0), arrival, cfg.display_rate)
        .map_err(|e| e.to_string())?;
    let t = schedule_client(
        &plan,
        VideoId(0),
        arrival,
        cfg.display_rate,
        sb_analysis::crosscheck::policy_for(id),
    )
    .map_err(|e| e.to_string())?;
    println!("PPB max-saving (pausing) client vs tune-at-start, arrival {arrival:.2}:");
    println!("  bursts               : {}", s.bursts.len());
    println!("  mid-broadcast joins  : {}", s.mid_broadcast_joins());
    println!("  pausing peak buffer  : {:.1}", s.peak_buffer_mbytes());
    println!(
        "  tune-at-start buffer : {:.1}",
        t.peak_buffer().to_mbytes()
    );
    println!(
        "  Table-1 analytic     : {:.1}",
        scheme
            .metrics(&cfg)
            .map_err(|e| e.to_string())?
            .buffer_requirement
            .to_mbytes()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let run = Opts::parse(rest).and_then(|opts| match cmd.as_str() {
        "plan" => cmd_plan(&opts),
        "metrics" => cmd_metrics(&opts),
        "client" => cmd_client(&opts),
        "sweep" => cmd_sweep(&opts),
        "hybrid" => cmd_hybrid(&opts),
        "control" => cmd_control(&opts),
        "resilience" => cmd_resilience(&opts),
        "throughput" => cmd_throughput(&opts),
        "scale" => cmd_scale(&opts),
        "scenario" => cmd_scenario(&opts),
        "recovery" => cmd_recovery(&opts),
        "frontier" => cmd_frontier(&opts),
        "series" => cmd_series(&opts),
        "hetero" => cmd_hetero(&opts),
        "pausing" => cmd_pausing(&opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    });
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
