//! `sbcast` — plan, inspect and simulate periodic-broadcast schemes.
//!
//! ```text
//! sbcast plan     --scheme SB:W=52 --bandwidth 300      print the channel plan summary
//! sbcast metrics  --scheme all    --bandwidth 320       Table-1 metrics at one bandwidth
//! sbcast client   --scheme SB:W=52 --bandwidth 300 --arrival 7.3
//!                                                       one client session, with buffer profile
//! sbcast sweep    [--from 100 --to 600 --step 20 --threads 8 --samples 24]
//!                                                       the Figures 6/7/8 data + crosschecks
//! sbcast hybrid   --bandwidth 600 --titles 60 --rate 3  the §1 hybrid system
//! sbcast control  --bandwidth 300 --shift-at 150 --rotate 20
//!                                                       static vs dynamic channel
//!                                                       control under a popularity shift
//! sbcast resilience --horizon 200 --seeds 7 --threads 2 the fault study: schemes under
//!                                                       bursty loss/outages + recovery
//! sbcast throughput --samples 300 --threads 4           streaming-core throughput +
//!                                                       agenda-churn stress -> BENCH_throughput.json
//! sbcast scale    --shards 4 --threads 4                sharded scale-out: agenda footprint
//!                                                       and sim-time rates -> BENCH_scale.json
//! sbcast scenario --preset urban --shards 4             metropolitan scenario pack: regional
//!                                                       SB vs baselines, flash crowds,
//!                                                       correlated outages -> BENCH_scenario.json
//! sbcast recovery --shards 2 --cadence 50 --chaos "kill:1@ckpt:1"
//!                                                       crash-recovery supervision: checkpoint,
//!                                                       kill, restore, verify byte-identity;
//!                                                       --mode sweep -> BENCH_recovery.json
//! sbcast frontier --profile smoke --shards 2            the scheme-zoo Pareto frontier in
//!                                                       latency x client I/O x buffer,
//!                                                       analytic + simulated -> BENCH_frontier.json
//! sbcast distribution --profile smoke --shards 2        the distributed metro tier: placement
//!                                                       x peer assist vs the source-once
//!                                                       bound -> BENCH_distribution.json
//! ```
//!
//! Scheme names: `SB:W=<w>`, `SB:W=inf`, `PB:a`, `PB:b`, `PPB:a`, `PPB:b`,
//! `STAG`, or `all`.
//!
//! Every study subcommand (`sweep`, `hybrid`, `control`, `resilience`,
//! `throughput`, `scale`, `scenario`, `recovery`, `frontier`,
//! `distribution`) dispatches through the [`sb_analysis::study`]
//! registry — one [`sb_analysis::Study`] per subcommand — behind one
//! execution-flag parser: `--threads N` sizes the worker pool (must be
//! ≥ 1; stdout and `--json` output are byte-identical for every N),
//! `--shards N` picks the scale-out shard count (`scale`, `scenario`,
//! `recovery`, `frontier` and `distribution` only; also
//! result-invariant), `--seed` the workload seed, `--json <path>` writes
//! the structured report, and `--manifest <path>` writes per-stage
//! wall-clock timings.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::process::ExitCode;

use sb_analysis::lineup::{schemes_from, SchemeId};
use sb_analysis::render::render_evaluations;
use sb_analysis::runner::Runner;
use sb_analysis::study::{Study, StudyCtx, StudyOpts};
use sb_batching::{BatchPolicy, HybridConfig};
use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::series::Width;
use sb_sim::policy::schedule_client;
use sb_sim::AgendaKind;
use sb_workload::{Catalog, Patience, PoissonArrivals, ZipfPopularity};
use vod_units::{Mbps, Minutes};

fn usage() -> &'static str {
    "usage: sbcast <plan|metrics|client|sweep|hybrid|control|resilience|throughput|scale|scenario|recovery|frontier|distribution|series|hetero|pausing> [--key value]...\n\
     keys: --scheme --bandwidth --arrival --video --from --to --step\n\
           --titles --popular --rate --rates 1,2,4 --horizon --width --seed\n\
           --units 1,2,2,5,5 --k 10 --lengths 95,120,150\n\
           --shift-at --rotate --tick --half-life --hysteresis --ceiling\n\
           --retry --retry-factor --retry-attempts\n\
           --patience --fraction --seeds 11,23,47\n\
           --loss-rates 0.01,0.05 --burst-len 4\n\
           --outage-channel --outage-start --outage-duration\n\
           --threads N --shards N --sessions N --videos N --samples N\n\
           --preset urban|rural|remote|all --profile smoke|paper\n\
           --flash-at --flash-boost\n\
           --mode run|sweep --cadence N --kills N\n\
           --bandwidths 200,320 --catalogs 10,20 --buggy-hb yes\n\
           --chaos 'kill:1@ckpt:1;kill:0@tick:500;corrupt:1@ckpt:2'\n\
           --policies full,partitioned,hothead,proportional\n\
           --backbone N --tail-from N --uplink-fraction F\n\
           --agenda heap|wheel --json PATH --metrics PATH --manifest PATH"
}

struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --key, got `{k}`"))?;
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), v.clone());
        }
        Ok(Self(map))
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer `{v}`")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn cmd_plan(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 300.0)?;
    let ids = schemes_from(&opts.get_str("scheme", "SB:W=52"))?;
    let cfg = SystemConfig::paper_defaults(Mbps(b));
    for id in ids {
        let scheme = id.build();
        match scheme.plan(&cfg) {
            Ok(plan) => {
                println!(
                    "{}: {} channels, {} total",
                    plan.scheme,
                    plan.channels.len(),
                    plan.total_bandwidth()
                );
                let mut by_rate: HashMap<String, usize> = HashMap::new();
                for ch in &plan.channels {
                    *by_rate.entry(format!("{:.3}", ch.rate)).or_default() += 1;
                }
                let mut rates: Vec<_> = by_rate.into_iter().collect();
                rates.sort();
                for (rate, n) in rates {
                    println!("  {n} channel(s) at {rate}");
                }
                let sizes = &plan.segment_sizes[0];
                println!("  per-video fragments: {}", sizes.len());
                for (i, s) in sizes.iter().enumerate().take(8) {
                    println!(
                        "    segment {i}: {:.1} ({:.2} min at display rate)",
                        s,
                        s.value() / (1.5 * 60.0)
                    );
                }
                if sizes.len() > 8 {
                    println!("    … {} more", sizes.len() - 8);
                }
            }
            Err(e) => println!("{}: infeasible here ({e})", scheme.name()),
        }
    }
    Ok(())
}

fn cmd_metrics(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 320.0)?;
    let ids = schemes_from(&opts.get_str("scheme", "all"))?;
    let rows = sb_analysis::tables::evaluate_tables(&ids, &[b]);
    print!("{}", render_evaluations(&rows));
    Ok(())
}

fn cmd_client(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 300.0)?;
    let arrival = Minutes(opts.get_f64("arrival", 0.0)?);
    let video = VideoId(opts.get_usize("video", 0)?);
    let id = SchemeId::parse(&opts.get_str("scheme", "SB:W=52"))
        .ok_or_else(|| "unknown scheme".to_string())?;
    let cfg = SystemConfig::paper_defaults(Mbps(b));
    let scheme = id.build();
    let plan = scheme.plan(&cfg).map_err(|e| e.to_string())?;
    let policy = sb_analysis::crosscheck::policy_for(id);
    let s = schedule_client(&plan, video, arrival, cfg.display_rate, policy)
        .map_err(|e| e.to_string())?;
    println!("scheme {}   arrival {:.3}", plan.scheme, arrival);
    println!(
        "playback starts {:.4} (latency {:.4})",
        s.playback_start,
        s.startup_latency()
    );
    println!("downloads:");
    for d in &s.downloads {
        println!(
            "  seg {:>2}  ch {:>4}  [{:>9.4} .. {:>9.4}] min at {}",
            d.item.segment,
            d.channel,
            d.start.value(),
            d.end().value(),
            d.rate
        );
    }
    println!(
        "peak buffer {:.1} = {:.1}",
        s.peak_buffer(),
        s.peak_buffer().to_mbytes()
    );
    println!("max concurrent streams {}", s.max_concurrent_downloads());
    let jv = s.jitter_violations(1e-9);
    println!("jitter violations: {}", jv.len());
    Ok(())
}

/// The execution flags every study subcommand shares — `--threads`,
/// `--seed`, `--shards`, `--agenda`, `--json`, `--manifest` — parsed and
/// validated by one routine so every registered study rejects bad
/// values with identical messages.
struct CommonArgs {
    /// Worker-pool size (validated ≥ 1; results never depend on it).
    threads: usize,
    /// `--seed`, when given (each study applies its own default).
    seed: Option<u64>,
    /// Shard count (validated ≥ 1; only the sharded studies accept > 1).
    shards: usize,
    /// Engine event-store backend (`heap` or `wheel`; results never
    /// depend on it).
    agenda: AgendaKind,
    /// `--json <path>`: where to write the structured report.
    json: Option<String>,
    /// `--manifest <path>`: where to write per-stage wall timings.
    manifest: Option<String>,
}

impl CommonArgs {
    fn parse(opts: &Opts) -> Result<Self, String> {
        let threads = opts.get_usize("threads", 1)?;
        if threads == 0 {
            return Err("--threads must be at least 1 (got 0)".into());
        }
        let shards = opts.get_usize("shards", 1)?;
        if shards == 0 {
            return Err("--shards must be at least 1 (got 0)".into());
        }
        let seed = match opts.0.get("seed") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("--seed: bad integer `{v}`"))?,
            ),
        };
        let agenda_str = opts.get_str("agenda", "heap");
        let agenda = AgendaKind::parse(&agenda_str)
            .ok_or_else(|| format!("--agenda: expected `heap` or `wheel`, got `{agenda_str}`"))?;
        Ok(Self {
            threads,
            seed,
            shards,
            agenda,
            json: opts.0.get("json").cloned(),
            manifest: opts.0.get("manifest").cloned(),
        })
    }

    /// The worker pool this invocation asked for, driving the engine
    /// backend it asked for.
    fn runner(&self) -> Runner {
        Runner::new(self.threads).with_agenda(self.agenda)
    }

    /// Studies that are not sharded refuse the scale-out flag instead of
    /// silently ignoring it; the registry's [`Study::sharded`] studies
    /// (`scale`, `scenario`, `recovery`, `frontier`, `distribution`)
    /// skip this gate.
    fn reject_shards(&self, cmd: &str) -> Result<(), String> {
        if self.shards > 1 {
            return Err(format!(
                "--shards applies only to `scale`, `scenario`, `recovery`, `frontier` and \
                 `distribution` (got {} for `{cmd}`)",
                self.shards
            ));
        }
        Ok(())
    }

    /// Write `value` as pretty JSON if `--json` was given.
    fn maybe_write_json<T: serde::Serialize>(&self, value: &T) -> Result<(), String> {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("--json {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(())
    }
}

/// Print per-stage timings to stderr and honour `--manifest`. Timings
/// never touch stdout, so results stay byte-identical across `--threads`.
fn finish_runner(common: &CommonArgs, runner: &Runner) -> Result<(), String> {
    let manifest = runner.manifest();
    eprint!("{}", manifest.summary());
    if let Some(path) = &common.manifest {
        let json = serde_json::to_string_pretty(&manifest).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--manifest {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// The study-specific flag map a [`Study`] parses its configuration
/// from: every `--key value` pair as given (studies ignore the
/// execution keys — those arrive through [`StudyCtx`]).
fn study_opts(opts: &Opts) -> StudyOpts {
    StudyOpts::from_pairs(opts.0.iter().map(|(k, v)| (k.clone(), v.clone())))
}

/// Run one registered study: parse the common execution flags, build the
/// [`StudyCtx`], print the rendered report to stdout, write the JSON
/// artifact (the registry default or `--json`), honour `--metrics`, and
/// put wall-clock rates on stderr — exactly the stanza the nine
/// pre-registry subcommands each hand-rolled.
fn run_study(study: &'static dyn Study, opts: &Opts) -> Result<(), String> {
    let common = CommonArgs::parse(opts)?;
    if !study.sharded() {
        common.reject_shards(study.name())?;
    }
    let runner = common.runner();
    let study_opts = study_opts(opts);
    let ctx = StudyCtx {
        opts: &study_opts,
        shards: common.shards,
        seed: common.seed,
        runner: &runner,
    };
    let t0 = std::time::Instant::now();
    let out = study.run(&ctx)?;
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", out.rendered);
    match study.artifact() {
        Some(default) => {
            // Wall-clock is machine truth, not simulation truth: stderr
            // only, so stdout and the artifact stay byte-identical
            // across `--shards`, `--threads` and `--agenda`.
            let mut line = format!(
                "wall: {wall:.3}s at --shards {} --threads {}",
                common.shards,
                runner.threads(),
            );
            if out.sessions > 0 {
                line.push_str(&format!(", {:.0} sessions/sec", out.sessions as f64 / wall));
            }
            if out.events > 0 {
                line.push_str(&format!(", {:.0} events/sec", out.events as f64 / wall));
            }
            eprintln!("{line}");
            let path = common.json.clone().unwrap_or_else(|| default.to_string());
            std::fs::write(&path, &out.report_json).map_err(|e| format!("--json {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            if let Some(path) = &common.json {
                std::fs::write(path, &out.report_json)
                    .map_err(|e| format!("--json {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
        }
    }
    if let Some(snapshot) = &out.metrics {
        if let Some(path) = opts.0.get("metrics") {
            let json = serde_json::to_string_pretty(snapshot).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("--metrics {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    finish_runner(&common, &runner)
}

/// Resolve a registry study by name; a miss is a bug in the dispatch
/// table, not user error.
fn study(name: &str) -> &'static dyn Study {
    sb_analysis::study::find(name).expect("subcommand registered in sb_analysis::study")
}

/// The `hybrid` single-server report (the `--rates` study mode
/// dispatches through the registry instead).
fn cmd_hybrid(opts: &Opts) -> Result<(), String> {
    let b = opts.get_f64("bandwidth", 600.0)?;
    let titles = opts.get_usize("titles", 60)?;
    let popular = opts.get_usize("popular", 10)?;
    let rate = opts.get_f64("rate", 3.0)?;
    let horizon = opts.get_f64("horizon", 600.0)?;
    let width = opts.get_usize("width", 52)? as u64;
    let common = CommonArgs::parse(opts)?;
    common.reject_shards("hybrid")?;
    let seed = common.seed.unwrap_or(42);
    let catalog = Catalog::paper_defaults(titles);
    let requests = PoissonArrivals::new(rate, seed)
        .with_patience(Patience::Exponential(Minutes(8.0)))
        .generate(&ZipfPopularity::paper(titles), Minutes(horizon));
    let cfg = HybridConfig {
        total_bandwidth: Mbps(b),
        popular,
        width: Width::capped_lossy(width),
        policy: BatchPolicy::Mql,
        broadcast_fraction: 0.5,
    };
    let report = cfg.run(&catalog, &requests).map_err(|e| e.to_string())?;
    println!("hybrid server: {titles} titles, {popular} broadcast, B = {b} Mb/s");
    println!("requests: {}", requests.len());
    println!(
        "broadcast half : {} channels, worst latency {:.3}, {} requests ({} impatient)",
        report.broadcast_channels,
        report.broadcast_worst_latency,
        report.broadcast_requests,
        report.broadcast_impatient
    );
    println!(
        "multicast half : {} channels, served {} / reneged {} (renege rate {:.1}%), mean wait {:.2}, mean batch {:.2}",
        report.multicast_channels,
        report.multicast.served,
        report.multicast.reneged,
        report.multicast.renege_rate() * 100.0,
        report.multicast.mean_wait,
        report.multicast.mean_batch_size
    );
    Ok(())
}

/// One missing-shard marker, serialized for `--json`.
#[derive(serde::Serialize)]
struct MissingShardJson {
    shard: usize,
    attempts: u32,
    last_error: String,
}

/// The `recovery run` report, serialized for `--json`.
#[derive(serde::Serialize)]
struct RecoveryRunJson {
    sessions_merged: usize,
    complete: bool,
    identical: bool,
    crashes_injected: u64,
    restores: u64,
    corrupt_rejected: u64,
    replayed_sessions: u64,
    checkpoints: u64,
    recovery_delay_min: f64,
    missing: Vec<MissingShardJson>,
}

/// `recovery --mode run` (the default): one supervised run under an
/// explicit `--chaos` script, re-verifying the byte-identity invariant
/// against a plain `execute`. The `--mode sweep` study half dispatches
/// through the registry instead. Both are byte-identical across
/// `--threads`, `--shards` and `--agenda`.
fn cmd_recovery_run(opts: &Opts) -> Result<(), String> {
    use sb_resilience::{Backoff, CrashScript, Recovered, RunSpec, Supervisor};
    use sb_sim::policy::ClientPolicy;
    use sb_sim::system::{Request, SystemSim};
    use sb_sim::RunConfig;
    use sb_workload::GridArrivals;

    let common = CommonArgs::parse(opts)?;

    let bandwidth = Mbps(opts.get_f64("bandwidth", 320.0)?);
    let sessions = opts.get_usize("sessions", 2_000)?;
    let titles = opts.get_usize("titles", 10)?;
    let horizon = Minutes(opts.get_f64("horizon", 200.0)?);
    let cadence = opts.get_usize("cadence", 50)? as u64;
    let seed = common.seed.unwrap_or(17);
    let chaos = CrashScript::parse(&opts.get_str("chaos", "")).map_err(|e| e.to_string())?;
    let backoff = sb_analysis::study::parse_backoff(&study_opts(opts))?
        .map_or_else(|| Backoff::new(Minutes(1.0), 2.0, 8), Ok)
        .map_err(|e| e.to_string())?;

    let id = SchemeId::parse(&opts.get_str("scheme", "SB:W=52"))
        .ok_or_else(|| format!("unknown scheme `{}`", opts.get_str("scheme", "SB:W=52")))?;
    let sys = SystemConfig::paper_defaults(bandwidth);
    let plan = id.build().plan(&sys).map_err(|e| e.to_string())?;
    let requests: Vec<Request> = GridArrivals {
        sessions,
        horizon,
        titles: titles.min(plan.num_videos().max(1)),
        patience: Patience::Infinite,
        seed,
    }
    .generate()
    .into_iter()
    .map(|w| Request {
        at: w.at,
        video: VideoId(w.video),
    })
    .collect();

    // Up-front validation: a zero cadence or an out-of-range partition
    // is a typed error before anything runs.
    let run_cfg = RunConfig::new(&requests)
        .shards(common.shards)
        .threads(common.threads)
        .seed(seed)
        .agenda(common.agenda)
        .checkpoint_every(cadence);
    run_cfg.validate().map_err(|e| e.to_string())?;
    let supervisor = Supervisor::new(backoff, cadence).map_err(|e| e.to_string())?;

    let sim = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible);
    let baseline = sim.execute(run_cfg).map_err(|e| e.to_string())?;
    let spec = RunSpec {
        shards: common.shards,
        threads: common.threads,
        seed,
        agenda: common.agenda,
        partition: None,
    };
    let recovered = supervisor
        .run(&sim, &requests, &spec, &chaos)
        .map_err(|e| e.to_string())?;

    let bytes = |o: &sb_sim::RunOutcome| {
        serde_json::to_string(&(&o.summary, &o.fold, &o.snapshot)).expect("outcomes serialize")
    };
    let stats = *recovered.stats();
    let complete = matches!(recovered, Recovered::Complete { .. });
    let identical = complete && bytes(&baseline) == bytes(recovered.outcome());
    println!(
        "recovery run: {} at {} Mb/s, {} sessions on {} shard(s), cadence {}",
        id.label(),
        bandwidth.value(),
        sessions,
        common.shards,
        cadence,
    );
    println!(
        "chaos: {} event(s); crashes {}, restores {}, corrupt rejected {}, \
         replayed {}, checkpoints {}, modeled delay {:.1} min",
        chaos.events().len(),
        stats.crashes_injected,
        stats.restores,
        stats.corrupt_rejected,
        stats.replayed_sessions,
        stats.checkpoints_taken,
        stats.recovery_delay.value(),
    );
    println!(
        "sessions merged: {} of {}",
        recovered.outcome().summary.sessions,
        baseline.summary.sessions,
    );
    let missing: Vec<MissingShardJson> = match &recovered {
        Recovered::Complete { .. } => {
            println!(
                "identical to uninterrupted execute: {}",
                if identical { "yes" } else { "NO" }
            );
            Vec::new()
        }
        Recovered::Partial(p) => {
            println!("PARTIAL RUN: {} shard(s) lost", p.missing.len());
            for m in &p.missing {
                println!(
                    "  shard {}: lost after {} attempt(s): {}",
                    m.shard, m.attempts, m.last_error
                );
            }
            p.missing
                .iter()
                .map(|m| MissingShardJson {
                    shard: m.shard,
                    attempts: m.attempts,
                    last_error: m.last_error.clone(),
                })
                .collect()
        }
    };
    common.maybe_write_json(&RecoveryRunJson {
        sessions_merged: recovered.outcome().summary.sessions,
        complete,
        identical,
        crashes_injected: stats.crashes_injected,
        restores: stats.restores,
        corrupt_rejected: stats.corrupt_rejected,
        replayed_sessions: stats.replayed_sessions,
        checkpoints: stats.checkpoints_taken,
        recovery_delay_min: stats.recovery_delay.value(),
        missing,
    })?;
    if !identical && complete {
        return Err("supervised run diverged from the uninterrupted baseline".into());
    }
    Ok(())
}

fn cmd_series(opts: &Opts) -> Result<(), String> {
    use sb_core::custom::{greedy_max_series, validate_units, PhaseBudget};
    let budget = PhaseBudget::ExhaustiveUpTo(100_000);
    if let Some(spec) = opts.0.get("units") {
        let units: Vec<u64> = spec
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad unit `{t}`")))
            .collect::<Result<_, _>>()?;
        match validate_units(&units, budget) {
            Ok(()) => {
                println!("series {units:?} is VALID for the two-loader client");
                let total: u64 = units.iter().sum();
                println!(
                    "  latency for a 120-min video: {:.4} min",
                    120.0 / total as f64
                );
            }
            Err(v) => println!("series {units:?} is INVALID: {v}"),
        }
        Ok(())
    } else {
        let k = opts.get_usize("k", 10)?;
        let found = greedy_max_series(k, budget);
        println!("fastest two-loader-safe series of {k} fragments:");
        println!("  {found:?}");
        println!(
            "  (the paper's series: {:?})",
            sb_core::series::series(k.min(40))
        );
        Ok(())
    }
}

fn cmd_hetero(opts: &Opts) -> Result<(), String> {
    use sb_core::heterogeneous::{plan_heterogeneous, HeteroVideo};
    let b = opts.get_f64("bandwidth", 300.0)?;
    let width = opts.get_usize("width", 52)? as u64;
    let lengths = opts.get_str("lengths", "95,120,150,87,133");
    let videos: Vec<HeteroVideo> = lengths
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map(|m| HeteroVideo { length: Minutes(m) })
                .map_err(|_| format!("bad length `{t}`"))
        })
        .collect::<Result<_, _>>()?;
    let hp = plan_heterogeneous(Mbps(b), Mbps(1.5), &videos, Width::capped_lossy(width))
        .map_err(|e| e.to_string())?;
    println!(
        "heterogeneous SB plan: {} videos × {} channels, {} total",
        videos.len(),
        hp.channels_per_video,
        hp.plan.total_bandwidth()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "video", "length(min)", "latency(min)", "buffer(MB)"
    );
    for (v, pv) in hp.per_video.iter().enumerate() {
        println!(
            "{v:>6} {:>12.0} {:>14.4} {:>12.1}",
            videos[v].length.value(),
            pv.metrics.access_latency.value(),
            pv.metrics.buffer_requirement.to_mbytes().value()
        );
    }
    Ok(())
}

fn cmd_pausing(opts: &Opts) -> Result<(), String> {
    use sb_sim::pausing::schedule_pausing_client;
    let b = opts.get_f64("bandwidth", 320.0)?;
    let arrival = Minutes(opts.get_f64("arrival", 0.0)?);
    let id = SchemeId::parse(&opts.get_str("scheme", "PPB:b"))
        .ok_or_else(|| "unknown scheme".to_string())?;
    if !matches!(id, SchemeId::PpbA | SchemeId::PpbB) {
        return Err("pausing clients exist only for PPB (scheme PPB:a or PPB:b)".into());
    }
    let cfg = SystemConfig::paper_defaults(Mbps(b));
    let scheme = id.build();
    let plan = scheme.plan(&cfg).map_err(|e| e.to_string())?;
    let s = schedule_pausing_client(&plan, VideoId(0), arrival, cfg.display_rate)
        .map_err(|e| e.to_string())?;
    let t = schedule_client(
        &plan,
        VideoId(0),
        arrival,
        cfg.display_rate,
        sb_analysis::crosscheck::policy_for(id),
    )
    .map_err(|e| e.to_string())?;
    println!("PPB max-saving (pausing) client vs tune-at-start, arrival {arrival:.2}:");
    println!("  bursts               : {}", s.bursts.len());
    println!("  mid-broadcast joins  : {}", s.mid_broadcast_joins());
    println!("  pausing peak buffer  : {:.1}", s.peak_buffer_mbytes());
    println!(
        "  tune-at-start buffer : {:.1}",
        t.peak_buffer().to_mbytes()
    );
    println!(
        "  Table-1 analytic     : {:.1}",
        scheme
            .metrics(&cfg)
            .map_err(|e| e.to_string())?
            .buffer_requirement
            .to_mbytes()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let run = Opts::parse(rest).and_then(|opts| match cmd.as_str() {
        "plan" => cmd_plan(&opts),
        "metrics" => cmd_metrics(&opts),
        "client" => cmd_client(&opts),
        // Dual-mode subcommands: the study half goes through the
        // registry, the other half stays hand-rolled.
        "hybrid" if !opts.0.contains_key("rates") => cmd_hybrid(&opts),
        "recovery" => match opts.get_str("mode", "run").as_str() {
            "run" => cmd_recovery_run(&opts),
            "sweep" => run_study(study("recovery"), &opts),
            mode => Err(format!("--mode: expected `run` or `sweep`, got `{mode}`")),
        },
        "series" => cmd_series(&opts),
        "hetero" => cmd_hetero(&opts),
        "pausing" => cmd_pausing(&opts),
        other => match sb_analysis::study::find(other) {
            Some(study) => run_study(study, &opts),
            None => Err(format!("unknown command `{other}`\n{}", usage())),
        },
    });
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
