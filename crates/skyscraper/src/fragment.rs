//! Data fragmentation: from a `(K, W)` pair and a video length to concrete
//! fragment durations and sizes (§3.2).
//!
//! Fragment `i` of a `K`-fragment video spans `uᵢ = min(f(i), W)` *units*
//! of `D₁ = D / Σ uⱼ` minutes each. The access latency of the scheme is
//! exactly `D₁` (a fresh broadcast of the one-unit first fragment starts
//! every `D₁` minutes), which is how §3.2's formula
//! `Access Latency = D / Σ min(f(i), W)` arises.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

use crate::error::{Result, SchemeError};
use crate::series::{Width, MAX_SEGMENTS};

/// The fragmentation of one video under Skyscraper Broadcasting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fragmentation {
    /// Number of fragments `K`.
    pub k: usize,
    /// The width cap used.
    pub width: Width,
    /// Capped unit sizes `uᵢ = min(f(i), W)`, length `K`.
    pub units: Vec<u64>,
    /// The slot length `D₁` in minutes.
    pub slot: Minutes,
}

impl Fragmentation {
    /// Fragment a video of length `d` into `k` fragments with width `width`.
    pub fn new(d: Minutes, k: usize, width: Width) -> Result<Self> {
        if k == 0 {
            return Err(SchemeError::InvalidConfig {
                what: "a video needs at least one fragment",
            });
        }
        if k > MAX_SEGMENTS {
            return Err(SchemeError::TooManySegments {
                requested: k,
                max: MAX_SEGMENTS,
            });
        }
        if !(d.value().is_finite() && d.value() > 0.0) {
            return Err(SchemeError::InvalidConfig {
                what: "video length must be positive and finite",
            });
        }
        let units = width.units(k);
        let total: u64 = units.iter().sum();
        let slot = d / total as f64;
        Ok(Self {
            k,
            width,
            units,
            slot,
        })
    }

    /// Fragment a video along an explicit unit vector (for generalized
    /// series; see [`crate::custom`]). `width` is recorded as unbounded —
    /// callers track their own cap semantics.
    pub fn from_units(d: Minutes, units: Vec<u64>) -> Result<Self> {
        if units.is_empty() || units.contains(&0) {
            return Err(SchemeError::InvalidConfig {
                what: "unit vector must be non-empty and positive",
            });
        }
        if !(d.value().is_finite() && d.value() > 0.0) {
            return Err(SchemeError::InvalidConfig {
                what: "video length must be positive and finite",
            });
        }
        let total: u64 = units.iter().sum();
        Ok(Self {
            k: units.len(),
            width: Width::Unbounded,
            slot: d / total as f64,
            units,
        })
    }

    /// Total length of the video in slot units, `Σ uᵢ`.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.units.iter().sum()
    }

    /// Duration of fragment `i` (0-based) in minutes, `Dᵢ₊₁ = uᵢ·D₁`.
    #[must_use]
    pub fn duration(&self, i: usize) -> Minutes {
        self.slot * self.units[i] as f64
    }

    /// Size of fragment `i` (0-based) in Mbits at display rate `b`.
    #[must_use]
    pub fn size(&self, i: usize, display_rate: Mbps) -> Mbits {
        display_rate * self.duration(i)
    }

    /// Start offset of fragment `i`'s playback within the video, in slot
    /// units from the video start.
    #[must_use]
    pub fn playback_offset_units(&self, i: usize) -> u64 {
        self.units[..i].iter().sum()
    }

    /// The worst-case access latency `D₁` (§3.2).
    #[must_use]
    pub fn access_latency(&self) -> Minutes {
        self.slot
    }

    /// The effective width `min(W, f(K))` of this fragmentation — the unit
    /// size of the largest fragment actually present.
    #[must_use]
    pub fn effective_width(&self) -> u64 {
        *self.units.last().expect("k >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uncapped_k5_durations() {
        // D = 120, units [1,2,2,5,5] sum 15 → D₁ = 8 min.
        let f = Fragmentation::new(Minutes(120.0), 5, Width::Unbounded).unwrap();
        assert_eq!(f.total_units(), 15);
        assert!(f.slot.approx_eq(Minutes(8.0), 1e-12));
        assert!(f.duration(0).approx_eq(Minutes(8.0), 1e-12));
        assert!(f.duration(3).approx_eq(Minutes(40.0), 1e-12));
        assert_eq!(f.playback_offset_units(3), 5);
        assert_eq!(f.effective_width(), 5);
    }

    #[test]
    fn capped_latency_grows() {
        // Smaller W ⇒ larger D₁ ⇒ larger access latency (§3.2's trade-off).
        let d = Minutes(120.0);
        let cap2 = Fragmentation::new(d, 20, Width::Capped(2)).unwrap();
        let cap52 = Fragmentation::new(d, 20, Width::Capped(52)).unwrap();
        let unb = Fragmentation::new(d, 20, Width::Unbounded).unwrap();
        assert!(cap2.access_latency() > cap52.access_latency());
        assert!(cap52.access_latency() >= unb.access_latency());
    }

    #[test]
    fn sizes_use_display_rate() {
        let f = Fragmentation::new(Minutes(120.0), 5, Width::Unbounded).unwrap();
        // fragment 0: 8 minutes at 1.5 Mb/s = 720 Mbits.
        assert!(f.size(0, Mbps(1.5)).approx_eq(Mbits(720.0), 1e-9));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(Fragmentation::new(Minutes(120.0), 0, Width::Unbounded).is_err());
        assert!(Fragmentation::new(Minutes(0.0), 5, Width::Unbounded).is_err());
        assert!(Fragmentation::new(Minutes(120.0), MAX_SEGMENTS + 1, Width::Unbounded).is_err());
    }

    proptest! {
        #[test]
        fn durations_sum_to_video_length(k in 1usize..=60, wi in 0usize..10, d in 10.0f64..500.0) {
            let width = if wi == 0 { Width::Unbounded } else { Width::capped_lossy(crate::series::unit(2 * wi)) };
            let f = Fragmentation::new(Minutes(d), k, width).unwrap();
            let total: f64 = (0..k).map(|i| f.duration(i).value()).sum();
            prop_assert!((total - d).abs() < 1e-9 * d);
        }

        #[test]
        fn offsets_are_prefix_sums(k in 1usize..=60) {
            let f = Fragmentation::new(Minutes(120.0), k, Width::Unbounded).unwrap();
            let mut acc = 0;
            for i in 0..k {
                prop_assert_eq!(f.playback_offset_units(i), acc);
                acc += f.units[i];
            }
            prop_assert_eq!(acc, f.total_units());
        }
    }
}
