//! The exact, integer *slot-level* client model — §3.3's receiving rules
//! and §4's correctness and storage analysis, executable.
//!
//! Everything in Skyscraper Broadcasting happens on a grid of `D₁`-minute
//! *slots*: fragment `i` is `uᵢ` slots long, its channel repeats it with
//! period `uᵢ` starting at the epoch, so every broadcast of fragment `i`
//! begins at a slot index that is a multiple of `uᵢ`. A client that tunes
//! in at slot `t₀` (the first slot boundary after its arrival, hence the
//! `D₁` worst-case latency) behaves as follows:
//!
//! * The **Video Player** consumes fragments back to back from slot `t₀`,
//!   one slot of data per slot of time.
//! * The **Odd Loader** and **Even Loader** download *transmission groups*
//!   of odd/even unit size respectively. Each loader handles its groups in
//!   video order, one at a time, in their entirety, tuning only to the
//!   *beginning* of a broadcast, and catches for each group the **latest
//!   broadcast that still meets the playback deadline** — the unique
//!   broadcast start in `(playback(g) − unit(g), playback(g)]`. (Catching
//!   an earlier one would also be jitter-free but hoard buffer; §4's
//!   Figure 2 enumerates exactly the starts in `[t, t+2A]`, i.e. this
//!   window, as "the possible times to start receiving".)
//!
//! Because group `g` of unit `A` spans consecutive channels that are all
//! period-`A` and epoch-aligned, its start is simply the largest multiple
//! of `A` not exceeding the group's playback slot, and the whole group is
//! received as one contiguous stream of `len·A` slots.
//!
//! The subtle part of §4 — the part the paper spends Figures 2–4 proving —
//! is that this schedule never needs a loader to be in two places at once:
//! the chosen broadcast of a group never begins before the same loader has
//! finished the group two positions earlier (the Figure 4 "downloading
//! both groups during `t−1` to `t`" parity argument). In this
//! implementation that theorem is an *assertion*
//! ([`ClientTimeline::loader_conflicts`]), checked exhaustively by the
//! test-suite over fragment counts, widths, and arrival phases.
//!
//! [`ClientTimeline::compute`] derives the complete schedule for a given
//! arrival slot; the inspection methods then *check* the paper's claims:
//!
//! * [`ClientTimeline::jitter_violations`] — §4's jitter-free guarantee,
//! * [`ClientTimeline::max_concurrent_downloads`] — never more than two
//!   simultaneous download streams,
//! * [`ClientTimeline::peak_buffer_units`] — the storage requirement,
//!   globally `60·b·D₁·(W_eff − 1)` Mbits (§4's concluding formula),
//!   reproduced exactly by [`worst_case_peak_buffer_units`].

use serde::{Deserialize, Serialize};

use crate::groups::{group_segments, Parity, TransmissionGroup};

/// Which loader performs a download (§3.3's service routines).
pub type LoaderId = Parity;

/// One contiguous group download in a client's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupDownload {
    /// The transmission group being fetched.
    pub group: TransmissionGroup,
    /// Slot at which reception begins (a multiple of the group's unit).
    pub start: u64,
    /// The loader performing the download.
    pub loader: LoaderId,
}

impl GroupDownload {
    /// Slot one past the end of the download.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.group.total_units()
    }

    /// Slot at which segment `j` (absolute index) begins arriving.
    ///
    /// # Panics
    /// Panics if `j` is not part of this group.
    #[must_use]
    pub fn delivery_start(&self, j: usize) -> u64 {
        assert!(
            (self.group.first_segment..self.group.end_segment()).contains(&j),
            "segment {j} is not in group {}",
            self.group.index
        );
        self.start + (j - self.group.first_segment) as u64 * self.group.unit
    }
}

/// A reported violation of the jitter-free guarantee: a segment whose
/// delivery begins after its playback deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitterViolation {
    /// The late segment (absolute index).
    pub segment: usize,
    /// When its delivery starts.
    pub delivery_start: u64,
    /// When the player needs it.
    pub playback_start: u64,
}

/// The complete, deterministic timeline of one SB client in slot units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientTimeline {
    /// Capped unit sizes of the video's fragments.
    pub units: Vec<u64>,
    /// The slot at which the client tunes in and playback begins.
    pub t0: u64,
    /// The group downloads, in video order.
    pub downloads: Vec<GroupDownload>,
}

impl ClientTimeline {
    /// Derive the client schedule for a video fragmented as `units`, with
    /// playback starting at slot `t0`, using the paper's two loaders
    /// (odd/even parity assignment).
    ///
    /// # Panics
    /// Panics if `units` is empty or contains zeros (via
    /// [`group_segments`]).
    #[must_use]
    pub fn compute(units: &[u64], t0: u64) -> Self {
        let groups = group_segments(units);
        let mut downloads = Vec::with_capacity(groups.len());
        let mut playback = t0; // playback start of the current group
        for g in groups {
            // The unique broadcast start in (playback − unit, playback]:
            // the latest one that still delivers every byte on time. If it
            // precedes the client's arrival (impossible for a valid capped
            // broadcast series — the playback prefix before a group is
            // never shorter than unit−1), fall back to the next broadcast
            // after arrival; the miss then surfaces as a jitter violation
            // rather than a silently impossible schedule.
            let cand = prev_multiple(g.unit, playback);
            let start = if cand >= t0 {
                cand
            } else {
                next_multiple(g.unit, t0)
            };
            downloads.push(GroupDownload {
                group: g,
                start,
                loader: g.parity(),
            });
            playback += g.total_units();
        }
        Self {
            units: units.to_vec(),
            t0,
            downloads,
        }
    }

    /// Pairs of same-loader downloads that overlap in time — §4's central
    /// theorem is that for every valid capped broadcast series and every
    /// arrival phase this is empty (each loader is always free in time for
    /// its next group). Returned as `(earlier group index, later group
    /// index)` pairs.
    #[must_use]
    pub fn loader_conflicts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for parity in [Parity::Odd, Parity::Even] {
            let mine: Vec<&GroupDownload> = self
                .downloads
                .iter()
                .filter(|d| d.loader == parity)
                .collect();
            for w in mine.windows(2) {
                if w[0].end() > w[1].start {
                    out.push((w[0].group.index, w[1].group.index));
                }
            }
        }
        out
    }

    /// Total playback length in slots.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.units.iter().sum()
    }

    /// Playback start slot of segment `j` (absolute index).
    #[must_use]
    pub fn playback_start(&self, j: usize) -> u64 {
        self.t0 + self.units[..j].iter().sum::<u64>()
    }

    /// Slot at which the last download completes.
    #[must_use]
    pub fn downloads_end(&self) -> u64 {
        self.downloads
            .iter()
            .map(GroupDownload::end)
            .max()
            .unwrap_or(self.t0)
    }

    /// Slot at which playback completes.
    #[must_use]
    pub fn playback_end(&self) -> u64 {
        self.t0 + self.total_units()
    }

    /// Every segment whose delivery misses its playback deadline. §4
    /// proves this is empty for every valid capped broadcast series and
    /// every arrival phase; the test-suite checks that exhaustively for
    /// small configurations.
    #[must_use]
    pub fn jitter_violations(&self) -> Vec<JitterViolation> {
        let mut out = Vec::new();
        for d in &self.downloads {
            for j in d.group.first_segment..d.group.end_segment() {
                let delivery = d.delivery_start(j);
                let deadline = self.playback_start(j);
                if delivery > deadline {
                    out.push(JitterViolation {
                        segment: j,
                        delivery_start: delivery,
                        playback_start: deadline,
                    });
                }
            }
        }
        out
    }

    /// `true` when playback never starves (§4's jitter-free guarantee).
    #[must_use]
    pub fn is_jitter_free(&self) -> bool {
        self.jitter_violations().is_empty()
    }

    /// The maximum number of simultaneously active download streams.
    /// Bounded by 2 by construction (two loaders, each strictly
    /// sequential); the §4 argument that a *third* group never needs to
    /// start early is what makes 2 *sufficient*, which
    /// [`Self::is_jitter_free`] checks.
    #[must_use]
    pub fn max_concurrent_downloads(&self) -> usize {
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.downloads.len() * 2);
        for d in &self.downloads {
            events.push((d.start, 1));
            events.push((d.end(), -1));
        }
        // Ends sort before starts at equal slots: back-to-back downloads on
        // one loader don't count as overlapping.
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut cur = 0i64;
        let mut max = 0i64;
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        max as usize
    }

    /// The buffer-occupancy profile as `(slot, units_in_buffer)` vertices
    /// of the piecewise-linear occupancy curve, beginning at `t0` and
    /// ending when both playback and downloads have finished.
    ///
    /// One *unit* of data is one slot's worth of video, i.e. `60·b·D₁`
    /// Mbits; occupancy is `(slots downloaded so far) − (slots consumed so
    /// far)`. This is exactly the quantity plotted at the bottom of the
    /// paper's Figures 1–4.
    #[must_use]
    pub fn buffer_profile(&self) -> Vec<(u64, u64)> {
        // Breakpoints: every download start/end, playback start/end.
        let mut points: Vec<u64> = vec![self.t0, self.playback_end()];
        for d in &self.downloads {
            points.push(d.start);
            points.push(d.end());
        }
        points.sort_unstable();
        points.dedup();

        let mut out = Vec::with_capacity(points.len());
        for &t in &points {
            let downloaded: u64 = self
                .downloads
                .iter()
                .map(|d| d.end().min(t).saturating_sub(d.start))
                .sum();
            let consumed = t
                .min(self.playback_end())
                .saturating_sub(self.t0)
                .min(self.total_units());
            // Jitter-free schedules never consume more than has arrived;
            // saturate anyway so broken schedules still produce a profile
            // (their jitter_violations() report is the real diagnostic).
            out.push((t, downloaded.saturating_sub(consumed)));
        }
        out
    }

    /// Peak buffer occupancy in slot units of data.
    #[must_use]
    pub fn peak_buffer_units(&self) -> u64 {
        self.buffer_profile()
            .into_iter()
            .map(|(_, b)| b)
            .max()
            .unwrap_or(0)
    }
}

/// The client schedule under a generalized `L`-loader receiver: group `g`
/// is serviced by loader `g mod L` (for the paper's series with `L = 2`
/// this coincides with the odd/even parity assignment, since consecutive
/// groups alternate parity). The broadcast-catching rule is unchanged —
/// latest deadline-meeting broadcast, tune-at-start only.
///
/// The follow-on literature (e.g. Eager & Vernon's client-bandwidth work)
/// explores exactly this axis: a client that can receive `L·b` instead of
/// `2·b` can follow faster-growing series and so enjoy lower latency from
/// the same server bandwidth. [`loaders_needed`] quantifies it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLoaderTimeline {
    /// The underlying (loader-agnostic) timeline.
    pub timeline: ClientTimeline,
    /// Number of loaders `L`.
    pub loaders: usize,
    /// Loader index per group download (aligned with
    /// `timeline.downloads`).
    pub assignment: Vec<usize>,
}

impl MultiLoaderTimeline {
    /// Compute the schedule with `l` loaders.
    ///
    /// # Panics
    /// Panics if `l == 0`.
    #[must_use]
    pub fn compute(units: &[u64], t0: u64, l: usize) -> Self {
        assert!(l > 0, "at least one loader required");
        let timeline = ClientTimeline::compute(units, t0);
        let assignment = (0..timeline.downloads.len()).map(|g| g % l).collect();
        Self {
            timeline,
            loaders: l,
            assignment,
        }
    }

    /// Same-loader overlaps, as `(earlier group, later group)` pairs.
    #[must_use]
    pub fn loader_conflicts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for loader in 0..self.loaders {
            let mine: Vec<&GroupDownload> = self
                .timeline
                .downloads
                .iter()
                .zip(&self.assignment)
                .filter(|(_, &a)| a == loader)
                .map(|(d, _)| d)
                .collect();
            for w in mine.windows(2) {
                if w[0].end() > w[1].start {
                    out.push((w[0].group.index, w[1].group.index));
                }
            }
        }
        out
    }

    /// `true` when the schedule works with this loader count: jitter-free
    /// and no loader double-booked.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.timeline.is_jitter_free() && self.loader_conflicts().is_empty()
    }
}

/// The smallest loader count `L ≤ max_loaders` under which `units` is
/// feasible at every probed arrival phase, or `None` if even
/// `max_loaders` does not suffice.
#[must_use]
pub fn loaders_needed(units: &[u64], max_loaders: usize, phases: u64) -> Option<usize> {
    'l: for l in 1..=max_loaders {
        for t0 in 0..phases {
            if !MultiLoaderTimeline::compute(units, t0, l).feasible() {
                continue 'l;
            }
        }
        return Some(l);
    }
    None
}

/// Smallest multiple of `a` that is `>= t`.
#[must_use]
pub fn next_multiple(a: u64, t: u64) -> u64 {
    assert!(a > 0);
    t.div_ceil(a) * a
}

/// Largest multiple of `a` that is `<= t`.
#[must_use]
pub fn prev_multiple(a: u64, t: u64) -> u64 {
    assert!(a > 0);
    t / a * a
}

/// The channel-alignment hyperperiod of a fragmentation: the least common
/// multiple of the distinct unit sizes. Client behaviour depends on the
/// arrival slot only through `t0 mod hyperperiod`.
///
/// Returns `None` on `u64` overflow (astronomically wide series).
#[must_use]
pub fn hyperperiod(units: &[u64]) -> Option<u64> {
    let mut l: u64 = 1;
    for &u in units {
        l = lcm(l, u)?;
    }
    Some(l)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> Option<u64> {
    (a / gcd(a, b)).checked_mul(b)
}

/// The exact worst-case peak buffer over *all* arrival phases, in slot
/// units, computed by exhaustive sweep of one hyperperiod.
///
/// §4 concludes this equals `W_eff − 1` (effective width minus one); the
/// test-suite asserts that equality for a grid of `(K, W)`.
///
/// Returns `None` if the hyperperiod overflows or exceeds `max_phases`
/// (use [`sampled_worst_case_peak_buffer_units`] for very wide series).
#[must_use]
pub fn worst_case_peak_buffer_units(units: &[u64], max_phases: u64) -> Option<u64> {
    let h = hyperperiod(units)?;
    if h > max_phases {
        return None;
    }
    let mut worst = 0;
    for t0 in 0..h {
        let tl = ClientTimeline::compute(units, t0);
        debug_assert!(tl.is_jitter_free());
        worst = worst.max(tl.peak_buffer_units());
    }
    Some(worst)
}

/// A sampled estimate of the worst-case peak buffer for series whose
/// hyperperiod is too large to sweep: probes the phases adjacent to every
/// multiple of every distinct unit inside one window of the largest unit,
/// plus `extra` evenly spaced phases. The §4 worst case arises at such
/// alignment boundaries, so in practice the sample attains the true
/// maximum (cross-checked against the exhaustive sweep where feasible).
#[must_use]
pub fn sampled_worst_case_peak_buffer_units(units: &[u64], extra: u64) -> u64 {
    let mut distinct: Vec<u64> = units.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let biggest = *distinct.last().expect("non-empty units");
    let window = biggest.saturating_mul(4).max(16);
    let mut phases: Vec<u64> = Vec::new();
    for &u in &distinct {
        let mut m = 0;
        while m <= window {
            for p in [m.saturating_sub(1), m, m + 1] {
                phases.push(p);
            }
            m += u;
        }
    }
    let step = (window / extra.max(1)).max(1);
    phases.extend((0..window).step_by(step as usize));
    phases.sort_unstable();
    phases.dedup();
    phases
        .into_iter()
        .map(|t0| ClientTimeline::compute(units, t0).peak_buffer_units())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{unit, Width};
    use proptest::prelude::*;

    #[test]
    fn next_multiple_basics() {
        assert_eq!(next_multiple(5, 0), 0);
        assert_eq!(next_multiple(5, 1), 5);
        assert_eq!(next_multiple(5, 5), 5);
        assert_eq!(next_multiple(5, 6), 10);
        assert_eq!(next_multiple(1, 7), 7);
    }

    #[test]
    fn hyperperiod_of_k5() {
        assert_eq!(hyperperiod(&[1, 2, 2, 5, 5]), Some(10));
        assert_eq!(hyperperiod(&[1, 2, 2, 5, 5, 12, 12]), Some(60));
    }

    #[test]
    fn figure1_phases() {
        // Figure 1, K=3 prefix [1,2,2]: a client arriving at an odd slot
        // needs no buffering; at an even slot it buffers exactly one unit.
        let units = [1, 2, 2];
        let odd = ClientTimeline::compute(&units, 1);
        assert!(odd.is_jitter_free());
        assert_eq!(odd.peak_buffer_units(), 0, "Figure 1(a): no disk required");

        let even = ClientTimeline::compute(&units, 0);
        assert!(even.is_jitter_free());
        assert_eq!(even.peak_buffer_units(), 1, "Figure 1(b): 60·b·D₁ needed");
    }

    #[test]
    fn k5_worked_example() {
        // The worked example from the design notes: units [1,2,2,5,5],
        // t0 = 4 is the worst phase and peaks at W_eff − 1 = 4 units.
        let units = [1, 2, 2, 5, 5];
        let tl = ClientTimeline::compute(&units, 4);
        assert!(tl.is_jitter_free());
        assert_eq!(tl.max_concurrent_downloads(), 2);
        assert_eq!(tl.peak_buffer_units(), 4);
        // Downloads: (1) at 4; (2,2) at 4; (5,5) at 5.
        assert_eq!(tl.downloads[0].start, 4);
        assert_eq!(tl.downloads[1].start, 4);
        assert_eq!(tl.downloads[2].start, 5);
        assert_eq!(worst_case_peak_buffer_units(&units, 1_000), Some(4));
    }

    #[test]
    fn profile_starts_and_ends_empty() {
        let units = [1, 2, 2, 5, 5, 12, 12];
        for t0 in 0..60 {
            let tl = ClientTimeline::compute(&units, t0);
            let profile = tl.buffer_profile();
            assert_eq!(profile.first().map(|&(_, b)| b), Some(0));
            assert_eq!(profile.last().map(|&(_, b)| b), Some(0));
        }
    }

    #[test]
    fn loaders_alternate_strictly() {
        let units = Width::Unbounded.units(11);
        let tl = ClientTimeline::compute(&units, 3);
        for w in tl.downloads.windows(2) {
            assert_eq!(w[0].loader, w[1].loader.other());
        }
        // And each loader's own downloads never overlap.
        for parity in [Parity::Odd, Parity::Even] {
            let mine: Vec<_> = tl.downloads.iter().filter(|d| d.loader == parity).collect();
            for w in mine.windows(2) {
                assert!(w[0].end() <= w[1].start);
            }
        }
    }

    #[test]
    fn storage_claim_exhaustive_small() {
        // §4's conclusion: worst case over phases = W_eff − 1 units.
        for (k, width) in [
            (5, Width::Unbounded),  // W_eff = 5
            (7, Width::Unbounded),  // W_eff = 12
            (9, Width::Capped(5)),  // W_eff = 5
            (9, Width::Capped(2)),  // W_eff = 2
            (8, Width::Capped(12)), // W_eff = 12
            (4, Width::Capped(52)), // short video: W_eff = 5
            (3, Width::Unbounded),  // W_eff = 2
            (1, Width::Unbounded),  // single segment: no buffering at all
        ] {
            let units = width.units(k);
            let w_eff = width.effective(k);
            let worst =
                worst_case_peak_buffer_units(&units, 100_000).expect("hyperperiod small enough");
            assert_eq!(
                worst,
                w_eff - 1,
                "k={k} {width}: worst-case buffer should be W_eff−1"
            );
        }
    }

    #[test]
    fn sampled_matches_exhaustive_where_feasible() {
        for (k, width) in [
            (7, Width::Unbounded),
            (9, Width::Capped(5)),
            (11, Width::Capped(12)),
        ] {
            let units = width.units(k);
            let exact = worst_case_peak_buffer_units(&units, 10_000_000).unwrap();
            let sampled = sampled_worst_case_peak_buffer_units(&units, 64);
            assert_eq!(sampled, exact, "k={k} {width}");
        }
    }

    #[test]
    fn single_segment_video_is_trivial() {
        let tl = ClientTimeline::compute(&[1], 9);
        assert!(tl.is_jitter_free());
        assert_eq!(tl.peak_buffer_units(), 0);
        assert_eq!(tl.max_concurrent_downloads(), 1);
    }

    #[test]
    fn w1_series_never_buffers() {
        // W=1: all fragments are one unit; a single group downloaded
        // just-in-time. I/O bandwidth b, zero buffer (the paper's W=1 row).
        let units = Width::Capped(1).units(12);
        for t0 in 0..8 {
            let tl = ClientTimeline::compute(&units, t0);
            assert!(tl.is_jitter_free());
            assert_eq!(tl.peak_buffer_units(), 0);
            assert_eq!(tl.max_concurrent_downloads(), 1);
        }
    }

    #[test]
    fn two_loaders_match_parity_assignment() {
        // For the paper's series, `g mod 2` IS the odd/even assignment
        // (groups alternate parity), so the multi-loader model at L=2
        // agrees with the paper's client exactly.
        let units = Width::Unbounded.units(9);
        for t0 in 0..32 {
            let two = MultiLoaderTimeline::compute(&units, t0, 2);
            let paper = ClientTimeline::compute(&units, t0);
            assert!(two.feasible());
            assert_eq!(two.loader_conflicts(), paper.loader_conflicts());
        }
    }

    #[test]
    fn doubling_series_needs_more_loaders() {
        // The client-bandwidth trade-off: the latency-optimal doubling
        // series is unusable at L=2 but becomes usable with more loaders
        // (at the price of a higher client receive bandwidth L·b).
        let doubling: Vec<u64> = (0..8u32).map(|i| 1u64 << i).collect();
        let needed = loaders_needed(&doubling, 8, 512);
        assert!(needed.is_some(), "some loader count must suffice");
        let l = needed.unwrap();
        assert!(
            l > 2,
            "doubling must need more than the paper's 2 loaders, got {l}"
        );
        // And the paper's series needs exactly 2 (1 only works for W=1).
        let paper = Width::Unbounded.units(8);
        assert_eq!(loaders_needed(&paper, 8, 512), Some(2));
        assert_eq!(loaders_needed(&Width::Capped(1).units(8), 8, 64), Some(1));
    }

    #[test]
    fn single_loader_insufficient_for_growth() {
        let units = Width::Unbounded.units(5);
        let one = MultiLoaderTimeline::compute(&units, 0, 1);
        assert!(!one.feasible(), "one loader cannot follow [1,2,2,5,5]");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// §4's central claims, property-tested across fragment counts,
        /// widths, and arrival phases: playback is jitter-free, at most two
        /// download streams ever run concurrently, and the buffer stays
        /// within W_eff − 1 units.
        #[test]
        fn correctness_and_storage_bounds(k in 1usize..=24, wi in 0usize..8, t0 in 0u64..4096) {
            let width = if wi == 0 { Width::Unbounded } else { Width::Capped(unit(2 * wi)) };
            let units = width.units(k);
            let tl = ClientTimeline::compute(&units, t0);
            prop_assert!(tl.is_jitter_free(), "violations: {:?}", tl.jitter_violations());
            prop_assert!(tl.loader_conflicts().is_empty(),
                "loader double-booked: {:?}", tl.loader_conflicts());
            prop_assert!(tl.max_concurrent_downloads() <= 2);
            prop_assert!(tl.peak_buffer_units() <= width.effective(k) - 1 + u64::from(k == 1));
            // downloads never precede arrival
            prop_assert!(tl.downloads.iter().all(|d| d.start >= t0));
            // downloads all finish by playback end (nothing left undelivered)
            prop_assert!(tl.downloads_end() <= tl.playback_end());
        }

        /// Client behaviour is periodic in the hyperperiod.
        #[test]
        fn phase_periodicity(k in 2usize..=9, t0 in 0u64..256) {
            let units = Width::Unbounded.units(k);
            let h = hyperperiod(&units).unwrap();
            let a = ClientTimeline::compute(&units, t0);
            let b = ClientTimeline::compute(&units, t0 + h);
            // Same relative schedule: shift every download by h.
            prop_assert_eq!(a.downloads.len(), b.downloads.len());
            for (da, db) in a.downloads.iter().zip(&b.downloads) {
                prop_assert_eq!(da.start + h, db.start);
            }
            prop_assert_eq!(a.peak_buffer_units(), b.peak_buffer_units());
        }
    }
}
