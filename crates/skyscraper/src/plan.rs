//! Scheme-agnostic broadcast plans.
//!
//! Every periodic-broadcast scheme in this workspace — Skyscraper, PB, PPB,
//! staggered — reduces to the same server-side artifact: a set of *logical
//! channels*, each with a fixed rate, a phase offset, and a finite cyclic
//! schedule of `(video, segment)` items that repeats forever. The
//! discrete-event simulator consumes exactly this representation, so the
//! analytic formulas and the empirical measurements are computed from the
//! same object.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

/// Identifier of a video within a plan (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VideoId(pub usize);

impl core::fmt::Display for VideoId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One `(video, segment)` pair carried by a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BroadcastItem {
    /// The video the segment belongs to.
    pub video: VideoId,
    /// Segment index within the video (0-based).
    pub segment: usize,
}

/// One entry of a channel's cyclic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledSegment {
    /// What is broadcast.
    pub item: BroadcastItem,
    /// Size of the segment in Mbits.
    pub size: Mbits,
    /// On-air time of one transmission of the segment at the channel rate,
    /// in minutes (`size / rate`).
    pub on_air: Minutes,
}

/// A logical channel: a constant-rate stream cyclically transmitting its
/// schedule, first transmission beginning at `phase` minutes past the
/// simulation epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalChannel {
    /// Dense channel id within the plan.
    pub id: usize,
    /// Constant transmission rate of the channel.
    pub rate: Mbps,
    /// Offset of the first cycle start from the epoch. PPB's
    /// phase-shifted subchannel replicas are expressed with this; all
    /// other schemes use zero.
    pub phase: Minutes,
    /// The cyclic schedule (repeats forever, back to back).
    pub cycle: Vec<ScheduledSegment>,
}

impl LogicalChannel {
    /// Duration of one full cycle in minutes.
    #[must_use]
    pub fn period(&self) -> Minutes {
        self.cycle.iter().map(|s| s.on_air).sum()
    }

    /// All transmission start times of `item` within `[0, horizon)`,
    /// in minutes. Used by client policies to find the next tune-in point.
    #[must_use]
    pub fn starts_of(&self, item: BroadcastItem, horizon: Minutes) -> Vec<Minutes> {
        let period = self.period().value();
        let mut offsets = Vec::new();
        let mut acc = 0.0;
        for s in &self.cycle {
            if s.item == item {
                offsets.push(acc);
            }
            acc += s.on_air.value();
        }
        let mut out = Vec::new();
        let mut cycle_start = self.phase.value();
        // Back up so items whose first occurrence is before `phase + period`
        // but after 0 are included when phase > 0? Phases are non-negative
        // and the first cycle begins at `phase`; nothing airs before it.
        while cycle_start < horizon.value() {
            for &o in &offsets {
                let t = cycle_start + o;
                if t < horizon.value() {
                    out.push(Minutes(t));
                }
            }
            cycle_start += period;
        }
        out
    }

    /// Boundary tolerance for occurrence arithmetic, in period units.
    ///
    /// Callers hand in times computed from the same plan, so a boundary
    /// reached through a different float chain must count as a hit. The
    /// slack scales with `q` (occurrence index) because the noise in
    /// `offset + n·period` does — but only by ulps: 256·ε ≈ 5.7e-14
    /// relative, a couple of orders above accumulated rounding error
    /// and many below any genuinely distinct arrival. (A fixed `1e-9`
    /// *relative* slack once swallowed a real 3.2e-5-minute gap at
    /// t ≈ 32 000 min, handing clients a "next" broadcast that had
    /// already started and making their follow-up segment infeasible.)
    fn boundary_eps(q: f64) -> f64 {
        256.0 * f64::EPSILON * q.abs().max(1.0)
    }

    /// The last transmission start of `item` at or before `t` (but never
    /// before the channel's phase).
    ///
    /// Returns `None` if the channel never carries `item` or has not yet
    /// aired it by `t`.
    #[must_use]
    pub fn prev_start_of(&self, item: BroadcastItem, t: Minutes) -> Option<Minutes> {
        let period = self.period().value();
        debug_assert!(period > 0.0, "channel {} has an empty cycle", self.id);
        let mut acc = 0.0;
        let mut best: Option<f64> = None;
        for s in &self.cycle {
            if s.item == item {
                let offset = self.phase.value() + acc;
                // Occurrences at offset + n·period, n ≥ 0; want the largest
                // ≤ t, treating boundary hits (within [`Self::boundary_eps`])
                // as valid occurrences.
                let q = (t.value() - offset) / period;
                let eps = Self::boundary_eps(q);
                if q >= -eps {
                    let n = (q + eps).floor().max(0.0);
                    let mut candidate = offset + n * period;
                    if candidate > t.value() + eps * period {
                        candidate -= period;
                    }
                    if candidate >= offset - 1e-12 {
                        best = Some(match best {
                            Some(b) => b.max(candidate),
                            None => candidate,
                        });
                    }
                }
            }
            acc += s.on_air.value();
        }
        best.map(Minutes)
    }

    /// The first transmission start of `item` at or after `t`.
    ///
    /// Returns `None` if the channel never carries `item`.
    #[must_use]
    pub fn next_start_of(&self, item: BroadcastItem, t: Minutes) -> Option<Minutes> {
        let period = self.period().value();
        debug_assert!(period > 0.0, "channel {} has an empty cycle", self.id);
        let mut acc = 0.0;
        let mut best: Option<f64> = None;
        for s in &self.cycle {
            if s.item == item {
                // Occurrences are phase + offset + n·period for n ≥ 0; want
                // the smallest ≥ t, treating boundary hits (within
                // [`Self::boundary_eps`]) as valid occurrences.
                let offset = self.phase.value() + acc;
                let q = (t.value() - offset) / period;
                let eps = Self::boundary_eps(q);
                let n = (q - eps).ceil().max(0.0);
                let candidate = offset + n * period;
                // Guard against f64 edge: candidate may land just below t.
                let candidate = if candidate < t.value() - eps * period {
                    candidate + period
                } else {
                    candidate
                };
                best = Some(match best {
                    Some(b) => b.min(candidate),
                    None => candidate,
                });
            }
            acc += s.on_air.value();
        }
        best.map(Minutes)
    }
}

/// A complete broadcast plan for the popular-video set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    /// Human-readable scheme tag (e.g. `"SB:W=52"`, `"PB:a"`).
    pub scheme: String,
    /// Per-video segment sizes in Mbits (index = `VideoId`).
    pub segment_sizes: Vec<Vec<Mbits>>,
    /// The logical channels.
    pub channels: Vec<LogicalChannel>,
}

impl ChannelPlan {
    /// Aggregate bandwidth of all channels.
    #[must_use]
    pub fn total_bandwidth(&self) -> Mbps {
        Mbps(self.channels.iter().map(|c| c.rate.value()).sum())
    }

    /// Number of videos covered by the plan.
    #[must_use]
    pub fn num_videos(&self) -> usize {
        self.segment_sizes.len()
    }

    /// The channels carrying a given item, if any.
    #[must_use]
    pub fn channels_for(&self, item: BroadcastItem) -> Vec<&LogicalChannel> {
        self.channels
            .iter()
            .filter(|c| c.cycle.iter().any(|s| s.item == item))
            .collect()
    }

    /// Precompute the carrier index: per-item channel/occurrence lookup
    /// in O(1) instead of a scan over every cycle entry of every channel.
    ///
    /// The index answers exactly the queries [`ChannelPlan::channels_for`],
    /// [`LogicalChannel::next_start_of`] and
    /// [`LogicalChannel::prev_start_of`] answer, with bit-identical
    /// results (same float expressions, same fold order) — it only
    /// changes the lookup cost, which matters for plans with tens of
    /// thousands of cycle entries (FB/CTIFB at their segment cap).
    #[must_use]
    pub fn index(&self) -> PlanIndex<'_> {
        PlanIndex::new(self)
    }

    /// Structural validation:
    ///
    /// * every `(video, segment)` of `segment_sizes` is carried by at least
    ///   one channel, with a matching size;
    /// * total channel bandwidth does not exceed `budget` (within a relative
    ///   tolerance for float accumulation);
    /// * all cycles are non-empty and rates positive.
    pub fn validate(&self, budget: Mbps) -> Result<(), String> {
        for ch in &self.channels {
            if ch.cycle.is_empty() {
                return Err(format!("channel {} has an empty cycle", ch.id));
            }
            if !(ch.rate.value().is_finite() && ch.rate.value() > 0.0) {
                return Err(format!("channel {} has non-positive rate", ch.id));
            }
            if ch.phase.value() < 0.0 {
                return Err(format!("channel {} has negative phase", ch.id));
            }
            for s in &ch.cycle {
                let (v, g) = (s.item.video.0, s.item.segment);
                let expect = self
                    .segment_sizes
                    .get(v)
                    .and_then(|ss| ss.get(g))
                    .ok_or_else(|| format!("channel {} schedules unknown item v{v}/s{g}", ch.id))?;
                if !s.size.approx_eq(*expect, 1e-6 * expect.value().max(1.0)) {
                    return Err(format!(
                        "channel {} carries v{v}/s{g} with size {} but layout says {}",
                        ch.id, s.size, expect
                    ));
                }
            }
        }
        for (v, sizes) in self.segment_sizes.iter().enumerate() {
            for g in 0..sizes.len() {
                let item = BroadcastItem {
                    video: VideoId(v),
                    segment: g,
                };
                if self.channels_for(item).is_empty() {
                    return Err(format!("item v{v}/s{g} is never broadcast"));
                }
            }
        }
        let total = self.total_bandwidth();
        if total.value() > budget.value() * (1.0 + 1e-9) {
            return Err(format!(
                "plan uses {total} which exceeds the budget {budget}"
            ));
        }
        Ok(())
    }
}

/// One channel's occurrences of one item: the channel's position in
/// [`ChannelPlan::channels`] plus the absolute start offset of each
/// occurrence within the first cycle (phase included), in cycle order.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemOccurrences {
    /// Index into [`ChannelPlan::channels`].
    pub channel: usize,
    /// `phase + Σ on_air` of the entries preceding each occurrence —
    /// the occurrence's start time within the first cycle.
    offsets: Vec<f64>,
}

/// A precomputed per-item carrier index over a [`ChannelPlan`].
///
/// [`ChannelPlan::channels_for`] scans every cycle entry of every channel
/// on each call, and the per-channel occurrence searches rescan the whole
/// cycle; for FB-shaped plans at the segment cap (2¹⁶ − 1 segments per
/// video) a single client session costs ~4·10¹⁰ comparisons that way.
/// The index is built once in O(total cycle entries) and then answers
/// carrier and next/prev-start queries in time proportional to the
/// answer. All arithmetic is copied expression-for-expression from
/// [`LogicalChannel`] (including the ulp-scale boundary tolerance and the
/// fold order over occurrences), so results are bit-identical to the
/// scanning path — the unit tests pin this.
#[derive(Debug)]
pub struct PlanIndex<'a> {
    plan: &'a ChannelPlan,
    /// Per channel: cycle period, same summation order as
    /// [`LogicalChannel::period`].
    periods: Vec<f64>,
    /// `carriers[video][segment]` → occurrences, in channel order.
    carriers: Vec<Vec<Vec<ItemOccurrences>>>,
}

impl<'a> PlanIndex<'a> {
    fn new(plan: &'a ChannelPlan) -> Self {
        let mut carriers: Vec<Vec<Vec<ItemOccurrences>>> = plan
            .segment_sizes
            .iter()
            .map(|sizes| vec![Vec::new(); sizes.len()])
            .collect();
        let mut periods = Vec::with_capacity(plan.channels.len());
        for (ci, ch) in plan.channels.iter().enumerate() {
            // Same accumulation as `LogicalChannel::period` /
            // `next_start_of`: a running sum over the cycle in order.
            let mut acc = 0.0f64;
            for s in &ch.cycle {
                let (v, g) = (s.item.video.0, s.item.segment);
                if let Some(per_seg) = carriers.get_mut(v).and_then(|vs| vs.get_mut(g)) {
                    let offset = ch.phase.value() + acc;
                    match per_seg.last_mut() {
                        Some(occ) if occ.channel == ci => occ.offsets.push(offset),
                        _ => per_seg.push(ItemOccurrences {
                            channel: ci,
                            offsets: vec![offset],
                        }),
                    }
                }
                acc += s.on_air.value();
            }
            periods.push(ch.cycle.iter().map(|s| s.on_air.value()).sum());
        }
        Self {
            plan,
            periods,
            carriers,
        }
    }

    /// The plan this index was built from.
    #[must_use]
    pub fn plan(&self) -> &'a ChannelPlan {
        self.plan
    }

    /// The channels carrying `item`, in the same order
    /// [`ChannelPlan::channels_for`] returns them. Empty when the item is
    /// unknown or never broadcast.
    #[must_use]
    pub fn carriers(&self, item: BroadcastItem) -> &[ItemOccurrences] {
        self.carriers
            .get(item.video.0)
            .and_then(|vs| vs.get(item.segment))
            .map_or(&[], Vec::as_slice)
    }

    /// The channel behind an occurrence list.
    #[must_use]
    pub fn channel(&self, occ: &ItemOccurrences) -> &'a LogicalChannel {
        &self.plan.channels[occ.channel]
    }

    /// The channel's cycle period (same value as
    /// [`LogicalChannel::period`]).
    #[must_use]
    pub fn period(&self, occ: &ItemOccurrences) -> Minutes {
        Minutes(self.periods[occ.channel])
    }

    /// [`LogicalChannel::next_start_of`] for an indexed carrier: the first
    /// transmission start of the item at or after `t`. Never `None` — an
    /// [`ItemOccurrences`] only exists for carried items.
    #[must_use]
    pub fn next_start(&self, occ: &ItemOccurrences, t: Minutes) -> Minutes {
        let period = self.periods[occ.channel];
        let mut best: Option<f64> = None;
        for &offset in &occ.offsets {
            let q = (t.value() - offset) / period;
            let eps = LogicalChannel::boundary_eps(q);
            let n = (q - eps).ceil().max(0.0);
            let candidate = offset + n * period;
            let candidate = if candidate < t.value() - eps * period {
                candidate + period
            } else {
                candidate
            };
            best = Some(match best {
                Some(b) => b.min(candidate),
                None => candidate,
            });
        }
        Minutes(best.expect("occurrence lists are non-empty by construction"))
    }

    /// [`LogicalChannel::prev_start_of`] for an indexed carrier: the last
    /// transmission start of the item at or before `t`, `None` when the
    /// channel has not aired it yet.
    #[must_use]
    pub fn prev_start(&self, occ: &ItemOccurrences, t: Minutes) -> Option<Minutes> {
        let period = self.periods[occ.channel];
        let mut best: Option<f64> = None;
        for &offset in &occ.offsets {
            let q = (t.value() - offset) / period;
            let eps = LogicalChannel::boundary_eps(q);
            if q >= -eps {
                let n = (q + eps).floor().max(0.0);
                let mut candidate = offset + n * period;
                if candidate > t.value() + eps * period {
                    candidate -= period;
                }
                if candidate >= offset - 1e-12 {
                    best = Some(match best {
                        Some(b) => b.max(candidate),
                        None => candidate,
                    });
                }
            }
        }
        best.map(Minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_channel() -> LogicalChannel {
        // One channel alternating two items of 1 and 2 minutes on air.
        let mk = |video, segment, mins: f64| ScheduledSegment {
            item: BroadcastItem {
                video: VideoId(video),
                segment,
            },
            size: Mbps(1.5) * Minutes(mins),
            on_air: Minutes(mins),
        };
        LogicalChannel {
            id: 0,
            rate: Mbps(1.5),
            phase: Minutes(0.0),
            cycle: vec![mk(0, 0, 1.0), mk(0, 1, 2.0)],
        }
    }

    #[test]
    fn period_and_starts() {
        let ch = toy_channel();
        assert!(ch.period().approx_eq(Minutes(3.0), 1e-12));
        let item0 = BroadcastItem {
            video: VideoId(0),
            segment: 0,
        };
        let item1 = BroadcastItem {
            video: VideoId(0),
            segment: 1,
        };
        assert_eq!(
            ch.starts_of(item0, Minutes(7.0))
                .iter()
                .map(|m| m.value())
                .collect::<Vec<_>>(),
            vec![0.0, 3.0, 6.0]
        );
        assert_eq!(
            ch.starts_of(item1, Minutes(7.0))
                .iter()
                .map(|m| m.value())
                .collect::<Vec<_>>(),
            vec![1.0, 4.0]
        );
    }

    #[test]
    fn next_start_respects_phase() {
        let mut ch = toy_channel();
        ch.phase = Minutes(0.5);
        let item1 = BroadcastItem {
            video: VideoId(0),
            segment: 1,
        };
        // First airing of item1 at phase + 1.0 = 1.5.
        assert!(ch
            .next_start_of(item1, Minutes(0.0))
            .unwrap()
            .approx_eq(Minutes(1.5), 1e-12));
        assert!(ch
            .next_start_of(item1, Minutes(1.6))
            .unwrap()
            .approx_eq(Minutes(4.5), 1e-12));
        // Exactly at an occurrence returns that occurrence.
        assert!(ch
            .next_start_of(item1, Minutes(4.5))
            .unwrap()
            .approx_eq(Minutes(4.5), 1e-12));
    }

    #[test]
    fn prev_start_mirrors_next_start() {
        let mut ch = toy_channel();
        ch.phase = Minutes(0.5);
        let item1 = BroadcastItem {
            video: VideoId(0),
            segment: 1,
        };
        // Occurrences at 1.5, 4.5, 7.5, …
        assert_eq!(ch.prev_start_of(item1, Minutes(1.0)), None);
        assert!(ch
            .prev_start_of(item1, Minutes(1.5))
            .unwrap()
            .approx_eq(Minutes(1.5), 1e-12));
        assert!(ch
            .prev_start_of(item1, Minutes(5.0))
            .unwrap()
            .approx_eq(Minutes(4.5), 1e-12));
        // prev(next(t)) == next(t).
        let nxt = ch.next_start_of(item1, Minutes(3.0)).unwrap();
        assert!(ch.prev_start_of(item1, nxt).unwrap().approx_eq(nxt, 1e-12));
    }

    #[test]
    fn boundary_eps_stays_below_real_gaps_at_large_t() {
        // Regression: at t ≈ 32 343 min on a 120/713-minute period
        // (≈ 192 000 occurrences in), a 1e-9-relative slack once
        // swallowed a genuine 3.2e-5-minute gap and `next_start_of`
        // returned a broadcast that had already started. The tolerance
        // must be ulp-scale: next ≥ t, and prev strictly behind next.
        let mk = |segment, mins: f64| ScheduledSegment {
            item: BroadcastItem {
                video: VideoId(7),
                segment,
            },
            size: Mbps(1.5) * Minutes(mins),
            on_air: Minutes(mins),
        };
        let period = 120.0 / 713.0;
        let ch = LogicalChannel {
            id: 147,
            rate: Mbps(1.5),
            phase: Minutes(0.0),
            cycle: vec![mk(0, period)],
        };
        let item = BroadcastItem {
            video: VideoId(7),
            segment: 0,
        };
        // The 2.2M-session grid arrival that used to go infeasible.
        let t = Minutes(32_343.113_636_363_636);
        let next = ch.next_start_of(item, t).unwrap();
        assert!(
            next.value() >= t.value() - 1e-9,
            "next_start_of went backwards: {} < {}",
            next.value(),
            t.value(),
        );
        let prev = ch.prev_start_of(item, t).unwrap();
        assert!(prev < next, "prev {prev:?} not behind next {next:?}");
        assert!((next.value() - prev.value() - period).abs() < 1e-6);
        // Exact boundary hits (same float chain) still snap.
        assert_eq!(ch.next_start_of(item, next), Some(next));
        assert_eq!(ch.prev_start_of(item, prev), Some(prev));
    }

    #[test]
    fn index_is_bit_identical_to_the_scanning_path() {
        // Two channels, phases, interleaved multi-occurrence cycles — the
        // index must reproduce channels_for / next_start_of /
        // prev_start_of exactly (same floats, not just approximately).
        let mk = |video, segment, mins: f64| ScheduledSegment {
            item: BroadcastItem {
                video: VideoId(video),
                segment,
            },
            size: Mbps(1.5) * Minutes(mins),
            on_air: Minutes(mins),
        };
        let plan = ChannelPlan {
            scheme: "toy".into(),
            segment_sizes: vec![
                vec![Mbps(1.5) * Minutes(1.0), Mbps(1.5) * Minutes(2.0)],
                vec![Mbps(1.5) * Minutes(0.7)],
            ],
            channels: vec![
                LogicalChannel {
                    id: 0,
                    rate: Mbps(1.5),
                    phase: Minutes(0.0),
                    // Item (0,0) occurs twice, interleaved with (0,1).
                    cycle: vec![mk(0, 0, 1.0), mk(0, 1, 2.0), mk(0, 0, 1.0)],
                },
                LogicalChannel {
                    id: 1,
                    rate: Mbps(3.0),
                    phase: Minutes(0.4),
                    cycle: vec![mk(1, 0, 0.7), mk(0, 0, 1.0)],
                },
            ],
        };
        let index = plan.index();
        for (v, sizes) in plan.segment_sizes.iter().enumerate() {
            for g in 0..sizes.len() {
                let item = BroadcastItem {
                    video: VideoId(v),
                    segment: g,
                };
                let scan = plan.channels_for(item);
                let fast = index.carriers(item);
                assert_eq!(
                    scan.iter().map(|c| c.id).collect::<Vec<_>>(),
                    fast.iter().map(|o| index.channel(o).id).collect::<Vec<_>>(),
                    "carrier order for v{v}/s{g}"
                );
                for (ch, occ) in scan.iter().zip(fast) {
                    assert_eq!(ch.period(), index.period(occ));
                    // Awkward query times included: negative offsets,
                    // exact boundaries, far future.
                    for t in [0.0, 0.35, 0.4, 1.0, 2.9999999, 3.0, 17.23, 1234.5678] {
                        assert_eq!(
                            ch.next_start_of(item, Minutes(t)),
                            Some(index.next_start(occ, Minutes(t))),
                            "next_start v{v}/s{g} ch{} t={t}",
                            ch.id
                        );
                        assert_eq!(
                            ch.prev_start_of(item, Minutes(t)),
                            index.prev_start(occ, Minutes(t)),
                            "prev_start v{v}/s{g} ch{} t={t}",
                            ch.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn next_start_of_missing_item_is_none() {
        let ch = toy_channel();
        let ghost = BroadcastItem {
            video: VideoId(9),
            segment: 9,
        };
        assert_eq!(ch.next_start_of(ghost, Minutes(0.0)), None);
    }

    #[test]
    fn plan_validation() {
        let ch = toy_channel();
        let plan = ChannelPlan {
            scheme: "toy".into(),
            segment_sizes: vec![vec![Mbps(1.5) * Minutes(1.0), Mbps(1.5) * Minutes(2.0)]],
            channels: vec![ch],
        };
        plan.validate(Mbps(2.0)).unwrap();
        assert!(plan.validate(Mbps(1.0)).is_err()); // over budget
        let mut broken = plan.clone();
        broken.segment_sizes[0].push(Mbps(1.5) * Minutes(9.0));
        assert!(broken.validate(Mbps(2.0)).is_err()); // un-broadcast item
    }
}
