//! Generalized broadcast series — §6's closing remark, made concrete.
//!
//! "SB is a generalized broadcasting technique … Each SB scheme is
//! characterized by a broadcast series and a design parameter called the
//! width of the skyscraper. In this paper, we focus on one broadcast
//! series which is used as an example."
//!
//! This module supplies the other half of that generality:
//!
//! * [`ValidatedSeries`] — an arbitrary unit vector admitted as a
//!   broadcast series only after the two-loader client model has verified
//!   it (jitter-free and conflict-free) across arrival phases;
//! * [`validate_units`] — the checker, with structural pre-checks
//!   (positive, non-decreasing, alternating group parity) followed by an
//!   exhaustive or sampled phase sweep of [`crate::client`];
//! * [`greedy_max_series`] — a search for the fastest-growing valid
//!   series, which *rediscovers the paper's series*: growing any pair
//!   faster than the `2A+1 / 2A+2` alternation breaks the two-loader
//!   discipline (checked in tests).

use serde::{Deserialize, Serialize};

use vod_units::Minutes;

use crate::client::{hyperperiod, sampled_worst_case_peak_buffer_units, ClientTimeline};
use crate::config::SystemConfig;
use crate::error::{Result, SchemeError};
use crate::fragment::Fragmentation;
use crate::groups::group_segments;
use crate::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use crate::scheme::{BroadcastScheme, SchemeMetrics};

/// Why a unit vector is not a usable broadcast series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesViolation {
    /// Empty input or a zero unit.
    Degenerate,
    /// The first fragment must be one unit (it defines the slot/latency).
    FirstUnitNotOne,
    /// Units decreased from one fragment to the next.
    NotNondecreasing {
        /// First offending index.
        at: usize,
    },
    /// Two consecutive transmission groups share a loader.
    GroupsShareParity {
        /// Index of the second group of the same-parity pair.
        group: usize,
    },
    /// Some arrival phase starves the player.
    Jitter {
        /// An arrival phase exhibiting the starvation.
        phase: u64,
    },
    /// Some arrival phase double-books a loader.
    LoaderConflict {
        /// An arrival phase exhibiting the conflict.
        phase: u64,
    },
}

impl core::fmt::Display for SeriesViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SeriesViolation::Degenerate => write!(f, "empty series or zero unit"),
            SeriesViolation::FirstUnitNotOne => write!(f, "first unit must be 1"),
            SeriesViolation::NotNondecreasing { at } => {
                write!(f, "units decrease at index {at}")
            }
            SeriesViolation::GroupsShareParity { group } => {
                write!(f, "groups {} and {group} share a loader", group - 1)
            }
            SeriesViolation::Jitter { phase } => {
                write!(f, "playback starves at arrival phase {phase}")
            }
            SeriesViolation::LoaderConflict { phase } => {
                write!(f, "a loader is double-booked at arrival phase {phase}")
            }
        }
    }
}

/// How many phases to sweep when validating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseBudget {
    /// Sweep the full hyperperiod if it does not exceed the bound;
    /// otherwise fall back to sampling that many phases.
    ExhaustiveUpTo(u64),
    /// Sample exactly this many phases (plus alignment-adjacent ones).
    Sampled(u64),
}

impl Default for PhaseBudget {
    fn default() -> Self {
        PhaseBudget::ExhaustiveUpTo(100_000)
    }
}

/// Check a unit vector against the two-loader client model.
pub fn validate_units(
    units: &[u64],
    budget: PhaseBudget,
) -> core::result::Result<(), SeriesViolation> {
    if units.is_empty() || units.contains(&0) {
        return Err(SeriesViolation::Degenerate);
    }
    if units[0] != 1 {
        return Err(SeriesViolation::FirstUnitNotOne);
    }
    if let Some(at) = (1..units.len()).find(|&i| units[i] < units[i - 1]) {
        return Err(SeriesViolation::NotNondecreasing { at });
    }
    let groups = group_segments(units);
    for w in groups.windows(2) {
        if w[0].parity() == w[1].parity() {
            return Err(SeriesViolation::GroupsShareParity { group: w[1].index });
        }
    }
    let phases: Vec<u64> = match budget {
        PhaseBudget::ExhaustiveUpTo(cap) => match hyperperiod(units) {
            Some(h) if h <= cap => (0..h).collect(),
            _ => sampled_phases(units, cap),
        },
        PhaseBudget::Sampled(n) => sampled_phases(units, n),
    };
    for t0 in phases {
        let tl = ClientTimeline::compute(units, t0);
        if !tl.is_jitter_free() {
            return Err(SeriesViolation::Jitter { phase: t0 });
        }
        if !tl.loader_conflicts().is_empty() {
            return Err(SeriesViolation::LoaderConflict { phase: t0 });
        }
    }
    Ok(())
}

/// Alignment-aware phase sample: the multiples of every distinct unit
/// (±1) within a window, padded with an even grid.
fn sampled_phases(units: &[u64], n: u64) -> Vec<u64> {
    let mut distinct: Vec<u64> = units.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let window = distinct
        .last()
        .copied()
        .unwrap_or(1)
        .saturating_mul(4)
        .max(16);
    let mut phases = Vec::new();
    for &u in &distinct {
        let mut m = 0u64;
        while m <= window {
            phases.extend([m.saturating_sub(1), m, m + 1]);
            m += u;
        }
    }
    let step = (window / n.max(1)).max(1);
    phases.extend((0..window).step_by(step as usize));
    phases.sort_unstable();
    phases.dedup();
    phases
}

/// A unit vector certified usable by the two-loader client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatedSeries {
    units: Vec<u64>,
    budget: PhaseBudget,
}

impl ValidatedSeries {
    /// Validate and wrap.
    pub fn new(units: Vec<u64>, budget: PhaseBudget) -> Result<Self> {
        match validate_units(&units, budget) {
            Ok(()) => Ok(Self { units, budget }),
            Err(v) => Err(SchemeError::InvalidConfig {
                what: match v {
                    SeriesViolation::Degenerate => "degenerate series",
                    SeriesViolation::FirstUnitNotOne => "series must start with unit 1",
                    SeriesViolation::NotNondecreasing { .. } => {
                        "series units must be non-decreasing"
                    }
                    SeriesViolation::GroupsShareParity { .. } => {
                        "consecutive groups must alternate parity"
                    }
                    SeriesViolation::Jitter { .. } => "series starves the player at some phase",
                    SeriesViolation::LoaderConflict { .. } => {
                        "series double-books a loader at some phase"
                    }
                },
            }),
        }
    }

    /// The certified units.
    #[must_use]
    pub fn units(&self) -> &[u64] {
        &self.units
    }

    /// Total length in slot units.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.units.iter().sum()
    }

    /// The largest unit — governs the storage requirement, per §4's
    /// argument applied to this series.
    #[must_use]
    pub fn max_unit(&self) -> u64 {
        *self.units.iter().max().expect("non-empty")
    }

    /// The phase budget the certification used.
    #[must_use]
    pub fn budget(&self) -> PhaseBudget {
        self.budget
    }
}

/// Greedily build the fastest-growing valid series of `k` fragments: at
/// each pair, take the largest candidate unit (alternating parity,
/// bounded by twice-plus-two growth) that keeps the whole prefix valid
/// under `budget`.
///
/// Rediscovers the paper's `[1, 2, 2, 5, 5, 12, 12, …]` — see tests.
#[must_use]
pub fn greedy_max_series(k: usize, budget: PhaseBudget) -> Vec<u64> {
    let mut units: Vec<u64> = Vec::with_capacity(k);
    if k == 0 {
        return units;
    }
    units.push(1);
    while units.len() < k {
        let prev = *units.last().expect("non-empty");
        // Candidates: strictly larger, opposite parity, at most 2·prev+2
        // (beyond that even single-phase jitter-freeness fails: the new
        // group's period exceeds the previous group's playback window by
        // more than the §4 slack).
        let mut chosen = None;
        let mut c = 2 * prev + 2;
        while c > prev {
            if c % 2 != prev % 2 {
                let mut trial = units.clone();
                trial.push(c);
                if trial.len() < k {
                    trial.push(c);
                }
                if validate_units(&trial, budget).is_ok() {
                    chosen = Some(c);
                    break;
                }
            }
            c -= 1;
        }
        match chosen {
            Some(c) => {
                units.push(c);
                if units.len() < k {
                    units.push(c);
                }
            }
            // No valid growth: repeat the previous unit… which would merge
            // groups; stop instead (cannot happen for the skyscraper
            // recurrence, asserted in tests).
            None => break,
        }
    }
    units.truncate(k);
    units
}

/// A Skyscraper-style scheme running an arbitrary [`ValidatedSeries`]
/// instead of the paper's series — the "generalized broadcasting
/// technique" of §6 as a first-class [`BroadcastScheme`].
///
/// The series fixes the fragment count, so unlike [`crate::Skyscraper`]
/// the channel rule works in reverse: the configuration must provide at
/// least `series.len()` channels per video (`⌊B/(b·M)⌋ ≥ K`); any excess
/// bandwidth is simply left unused, mirroring how an operator would pin a
/// hand-tuned series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustomSkyscraper {
    series: ValidatedSeries,
}

impl CustomSkyscraper {
    /// Wrap a validated series as a scheme.
    #[must_use]
    pub fn new(series: ValidatedSeries) -> Self {
        Self { series }
    }

    /// The series.
    #[must_use]
    pub fn series(&self) -> &ValidatedSeries {
        &self.series
    }

    fn check_channels(&self, cfg: &SystemConfig) -> Result<usize> {
        cfg.validate()?;
        let k = self.series.units().len();
        let available = cfg.channels_ratio().floor() as usize;
        if available < k {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: available,
                required: k,
            });
        }
        Ok(k)
    }

    fn fragmentation(&self, cfg: &SystemConfig) -> Result<(usize, Minutes)> {
        let k = self.check_channels(cfg)?;
        let slot = Minutes(cfg.video_length.value() / self.series.total_units() as f64);
        Ok((k, slot))
    }
}

impl BroadcastScheme for CustomSkyscraper {
    fn name(&self) -> String {
        format!("SB:custom[{}]", self.series.units().len())
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let (_k, slot) = self.fragmentation(cfg)?;
        // Buffer: no closed form for arbitrary series — measure the
        // §4-style worst case over sampled phases of the slot model.
        let peak_units = sampled_worst_case_peak_buffer_units(self.series.units(), 64);
        // The §5 I/O rule, restated for arbitrary units: one stream if the
        // whole video is one group, two while at most two groups can be in
        // flight, three otherwise.
        let k = self.series.units().len();
        let streams = if self.series.max_unit() == 1 || k == 1 {
            1.0
        } else if self.series.max_unit() == 2 || k <= 3 {
            2.0
        } else {
            3.0
        };
        Ok(SchemeMetrics {
            access_latency: slot,
            client_io_bandwidth: vod_units::Mbps(cfg.display_rate.value() * streams),
            buffer_requirement: cfg.display_rate * Minutes(slot.value() * peak_units as f64),
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let (k, _slot) = self.fragmentation(cfg)?;
        // Build per-video channels exactly like the stock scheme, but from
        // the custom units.
        let frag = Fragmentation::from_units(cfg.video_length, self.series.units().to_vec())?;
        let mut segment_sizes = Vec::with_capacity(cfg.num_videos);
        let mut channels = Vec::with_capacity(cfg.num_videos * k);
        for v in 0..cfg.num_videos {
            let sizes: Vec<_> = (0..k).map(|i| frag.size(i, cfg.display_rate)).collect();
            for (i, &size) in sizes.iter().enumerate() {
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate: cfg.display_rate,
                    phase: Minutes(0.0),
                    cycle: vec![ScheduledSegment {
                        item: BroadcastItem {
                            video: VideoId(v),
                            segment: i,
                        },
                        size,
                        on_air: frag.duration(i),
                    }],
                });
            }
            segment_sizes.push(sizes);
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{series, Width};

    #[test]
    fn paper_series_validates() {
        for k in [1usize, 3, 5, 7, 9] {
            validate_units(&series(k), PhaseBudget::default())
                .unwrap_or_else(|v| panic!("K={k}: {v}"));
        }
        // Capped variants too.
        validate_units(&Width::Capped(5).units(9), PhaseBudget::default()).unwrap();
        validate_units(&Width::Capped(2).units(12), PhaseBudget::default()).unwrap();
    }

    #[test]
    fn structural_violations_detected() {
        assert_eq!(
            validate_units(&[], PhaseBudget::default()),
            Err(SeriesViolation::Degenerate)
        );
        assert_eq!(
            validate_units(&[2, 2], PhaseBudget::default()),
            Err(SeriesViolation::FirstUnitNotOne)
        );
        assert_eq!(
            validate_units(&[1, 5, 2], PhaseBudget::default()),
            Err(SeriesViolation::NotNondecreasing { at: 2 })
        );
        // doubling series: 2 then 4 — two even groups back to back.
        assert_eq!(
            validate_units(&[1, 2, 4], PhaseBudget::default()),
            Err(SeriesViolation::GroupsShareParity { group: 2 })
        );
    }

    #[test]
    fn overgrown_series_fails_dynamically() {
        // [1,2,2,7,7]: parities alternate, but 7 > 2·2+1 — the (7,7)
        // group's broadcasts are too sparse for the (2,2) window, so some
        // phase starves or double-books.
        let err = validate_units(&[1, 2, 2, 7, 7], PhaseBudget::default()).unwrap_err();
        assert!(
            matches!(
                err,
                SeriesViolation::Jitter { .. } | SeriesViolation::LoaderConflict { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn slower_series_also_validate() {
        // Conservative growth is fine: [1,2,2,3,3,4,4] alternates parity
        // and every group easily meets its window.
        validate_units(&[1, 2, 2, 3, 3, 4, 4], PhaseBudget::default()).unwrap();
        // …and so does the all-ones (W=1) degenerate skyscraper.
        validate_units(&[1, 1, 1, 1], PhaseBudget::default()).unwrap();
    }

    #[test]
    fn validated_series_accessors() {
        let v = ValidatedSeries::new(vec![1, 2, 2, 5, 5], PhaseBudget::default()).unwrap();
        assert_eq!(v.total_units(), 15);
        assert_eq!(v.max_unit(), 5);
        assert_eq!(v.units(), &[1, 2, 2, 5, 5]);
        assert!(ValidatedSeries::new(vec![1, 2, 4], PhaseBudget::default()).is_err());
    }

    #[test]
    fn greedy_search_rediscovers_the_paper_series() {
        // The headline: the paper's "funny" series is exactly the
        // fastest-growing series the two-loader client can follow.
        let found = greedy_max_series(9, PhaseBudget::ExhaustiveUpTo(50_000));
        assert_eq!(found, series(9), "greedy-max ≠ paper series");
    }

    #[test]
    fn custom_scheme_matches_stock_on_the_paper_series() {
        let cfg = SystemConfig::paper_defaults(vod_units::Mbps(150.0)); // K = 10
        let stock = crate::Skyscraper::unbounded();
        let custom = CustomSkyscraper::new(
            ValidatedSeries::new(series(10), PhaseBudget::default()).unwrap(),
        );
        let ms = stock.metrics(&cfg).unwrap();
        let mc = custom.metrics(&cfg).unwrap();
        assert!(mc.access_latency.approx_eq(ms.access_latency, 1e-12));
        assert!(mc.buffer_requirement.approx_eq(ms.buffer_requirement, 1e-6));
        assert_eq!(mc.client_io_bandwidth, ms.client_io_bandwidth);
        let plan = custom.plan(&cfg).unwrap();
        plan.validate(cfg.server_bandwidth).unwrap();
        assert_eq!(plan.channels.len(), 10 * 10);
    }

    #[test]
    fn custom_scheme_with_gentle_series() {
        // A deliberately conservative series: worse latency, tiny buffer.
        let units = vec![1, 2, 2, 3, 3, 4, 4, 5, 5, 6];
        let custom =
            CustomSkyscraper::new(ValidatedSeries::new(units, PhaseBudget::default()).unwrap());
        let cfg = SystemConfig::paper_defaults(vod_units::Mbps(150.0));
        let m = custom.metrics(&cfg).unwrap();
        let stock = crate::Skyscraper::unbounded().metrics(&cfg).unwrap();
        assert!(m.access_latency > stock.access_latency);
        assert!(m.buffer_requirement < stock.buffer_requirement);
    }

    #[test]
    fn custom_scheme_requires_enough_channels() {
        // A 10-fragment series needs K ≥ 10: B = 120 gives only 8.
        let custom = CustomSkyscraper::new(
            ValidatedSeries::new(series(10), PhaseBudget::default()).unwrap(),
        );
        let cfg = SystemConfig::paper_defaults(vod_units::Mbps(120.0));
        assert!(matches!(
            custom.metrics(&cfg),
            Err(SchemeError::InsufficientBandwidth { .. })
        ));
    }

    #[test]
    fn greedy_respects_requested_length() {
        assert_eq!(
            greedy_max_series(0, PhaseBudget::default()),
            Vec::<u64>::new()
        );
        assert_eq!(greedy_max_series(1, PhaseBudget::default()), vec![1]);
        assert_eq!(greedy_max_series(2, PhaseBudget::default()), vec![1, 2]);
        let six = greedy_max_series(6, PhaseBudget::default());
        assert_eq!(six.len(), 6);
        assert_eq!(six, series(6));
    }
}
