//! Choosing the width `W` — §3.2's design knob.
//!
//! "The number of videos determines the parameter K. Given K, we can
//! control the size of the first fragment, D₁, by adjusting W. … we can
//! reduce the access latency by using a larger W", at the cost of a larger
//! client buffer (`60·b·D₁·(W−1)` grows in `W` much faster than `D₁`
//! shrinks). This module solves the inverse problem: given a latency
//! target, find the smallest valid width that meets it.

use vod_units::Minutes;

use crate::error::{Result, SchemeError};
use crate::series::{capped_sum, unit, Width, MAX_SEGMENTS};

/// All distinct broadcast-series values that can serve as widths for a
/// `k`-segment video, in increasing order, ending with the first value
/// `≥ f(k)` (beyond which capping no longer changes anything).
#[must_use]
pub fn candidate_widths(k: usize) -> Vec<u64> {
    let k = k.clamp(1, MAX_SEGMENTS);
    let last = unit(k);
    let mut out = Vec::new();
    let mut n = 1;
    loop {
        let v = unit(n);
        if out.last() != Some(&v) {
            out.push(v);
        }
        if v >= last || n == MAX_SEGMENTS {
            break;
        }
        n += 1;
    }
    out
}

/// The access latency `D₁ = D / Σ min(f(i), W)` for a given width.
#[must_use]
pub fn latency_for(d: Minutes, k: usize, width: Width) -> Minutes {
    Minutes(d.value() / capped_sum(k, width) as f64)
}

/// The smallest valid width whose access latency is at most `target`
/// (§3.2: "The relationship between W and access latency … can be used to
/// determine W given the desired access latency").
///
/// Smaller widths mean cheaper clients, so the *smallest* satisfying width
/// is the economical choice. Returns an error if even the uncapped scheme
/// (`W = f(K)`) cannot reach the target — then only more server bandwidth
/// (larger `K`) helps.
pub fn min_width_for_latency(d: Minutes, k: usize, target: Minutes) -> Result<Width> {
    if !(target.value().is_finite() && target.value() > 0.0) {
        return Err(SchemeError::InvalidConfig {
            what: "latency target must be positive and finite",
        });
    }
    for w in candidate_widths(k) {
        let width = Width::Capped(w);
        if latency_for(d, k, width) <= target {
            return Ok(width);
        }
    }
    Err(SchemeError::InvalidConfig {
        what: "latency target unreachable even with an uncapped series; increase server bandwidth",
    })
}

/// The largest valid width whose client buffer stays within `budget`
/// Mbits — the other direction of §5.4's trade-off ("it is desirable to
/// keep W small in order to reduce the storage costs").
///
/// Buffer for width `w` at display rate `b`: `60·b·D₁(w)·(w_eff − 1)`.
/// Returns the largest affordable width (at least `W = 1`, whose buffer is
/// zero), so callers always get the best latency their clients can hold.
pub fn max_width_for_buffer(
    d: Minutes,
    k: usize,
    display_rate: vod_units::Mbps,
    budget: vod_units::Mbits,
) -> Result<Width> {
    if !(budget.value().is_finite() && budget.value() >= 0.0) {
        return Err(SchemeError::InvalidConfig {
            what: "buffer budget must be non-negative and finite",
        });
    }
    let mut best = Width::Capped(1);
    for w in candidate_widths(k) {
        let width = Width::Capped(w);
        let d1 = latency_for(d, k, width);
        let buffer = display_rate * Minutes(d1.value() * (width.effective(k) - 1) as f64);
        if buffer.value() <= budget.value() + 1e-9 {
            best = width;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn candidates_for_small_k() {
        assert_eq!(candidate_widths(1), vec![1]);
        assert_eq!(candidate_widths(5), vec![1, 2, 5]);
        assert_eq!(candidate_widths(10), vec![1, 2, 5, 12, 25, 52]);
    }

    #[test]
    fn latency_monotone_in_width() {
        let d = Minutes(120.0);
        let k = 20;
        let ws = candidate_widths(k);
        let ls: Vec<f64> = ws
            .iter()
            .map(|&w| latency_for(d, k, Width::Capped(w)).value())
            .collect();
        assert!(ls.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn paper_example_w52() {
        // §5.4: at B = 600 Mb/s (K = 40), W = 52 gives ≈ 0.1 min latency.
        let k = 40;
        let l = latency_for(Minutes(120.0), k, Width::Capped(52));
        assert!((l.value() - 0.1).abs() < 0.05, "expected ≈0.1 min, got {l}");
        // … so asking for 0.15 min should select a width ≤ 52.
        let w = min_width_for_latency(Minutes(120.0), k, Minutes(0.15)).unwrap();
        match w {
            Width::Capped(v) => assert!(v <= 52, "got {w}"),
            Width::Unbounded => panic!("capped width expected"),
        }
    }

    #[test]
    fn unreachable_target_errors() {
        assert!(min_width_for_latency(Minutes(120.0), 3, Minutes(1e-6)).is_err());
        assert!(min_width_for_latency(Minutes(120.0), 3, Minutes(0.0)).is_err());
    }

    #[test]
    fn buffer_budget_selection() {
        use vod_units::{Mbits, Mbps};
        let d = Minutes(120.0);
        let (k, b) = (40, Mbps(1.5));
        // 40 MB ≈ the §5.4 quote for W=52 at B=600.
        let w = max_width_for_buffer(d, k, b, Mbits(40.5 * 8.0)).unwrap();
        assert_eq!(w, Width::Capped(52));
        // A zero budget only affords W=1 (no buffering at all).
        assert_eq!(
            max_width_for_buffer(d, k, b, Mbits(0.0)).unwrap(),
            Width::Capped(1)
        );
        // An enormous budget affords the full series.
        let w = max_width_for_buffer(d, k, b, Mbits(1e9)).unwrap();
        assert_eq!(w, Width::Capped(*candidate_widths(k).last().unwrap()));
        assert!(max_width_for_buffer(d, k, b, Mbits(f64::NAN)).is_err());
    }

    proptest! {
        #[test]
        fn buffer_budget_is_respected(k in 1usize..=40, budget_mb in 0.0f64..500.0) {
            use vod_units::{Mbits, Mbps};
            let d = Minutes(120.0);
            let b = Mbps(1.5);
            let w = max_width_for_buffer(d, k, b, Mbits(budget_mb * 8.0)).unwrap();
            let d1 = latency_for(d, k, w);
            let buffer = 1.5 * 60.0 * d1.value() * (w.effective(k) - 1) as f64;
            prop_assert!(buffer <= budget_mb * 8.0 + 1e-6);
        }

        #[test]
        fn chosen_width_meets_target_and_is_minimal(
            k in 1usize..=40,
            target_frac in 0.0005f64..0.5,
        ) {
            let d = Minutes(120.0);
            let target = Minutes(d.value() * target_frac);
            if let Ok(width) = min_width_for_latency(d, k, target) {
                prop_assert!(latency_for(d, k, width) <= target);
                // minimality: the next-smaller candidate misses the target
                if let Width::Capped(w) = width {
                    let cands = candidate_widths(k);
                    let idx = cands.iter().position(|&c| c == w).unwrap();
                    if idx > 0 {
                        let smaller = Width::Capped(cands[idx - 1]);
                        prop_assert!(latency_for(d, k, smaller) > target);
                    }
                }
            } else {
                // error is only legitimate when even the largest candidate fails
                let best = Width::Capped(*candidate_widths(k).last().unwrap());
                prop_assert!(latency_for(d, k, best) > target);
            }
        }

        #[test]
        fn latency_shrinks_with_more_channels(k in 1usize..=79) {
            // Prefix sums strictly increase in k, so D₁ strictly decreases:
            // each extra channel per video buys latency.
            let d = Minutes(120.0);
            for w in [Width::Unbounded, Width::Capped(52), Width::Capped(2)] {
                prop_assert!(latency_for(d, k + 1, w) < latency_for(d, k, w));
            }
        }

        #[test]
        fn candidates_are_sorted_series_values(k in 1usize..=80) {
            let cands = candidate_widths(k);
            prop_assert!(cands.windows(2).all(|p| p[0] < p[1]));
            prop_assert!(cands.iter().all(|&w| crate::series::is_series_value(w)));
            prop_assert_eq!(*cands.last().unwrap(), unit(k));
        }
    }
}
