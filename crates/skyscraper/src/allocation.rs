//! Popularity-aware channel allocation across a catalog.
//!
//! §3.1 splits the `⌊B/b⌋` channels *evenly* among the `M` videos — the
//! right call when all ten titles are comparably hot. But the Zipf skew
//! the paper cites (§1) means even the broadcast set has a popularity
//! gradient, and a channel moved from the coldest to the hottest title
//! buys more *expected* latency than it costs. [`allocate_channels`] makes
//! that trade explicitly: a greedy marginal-gain allocator (optimal here,
//! because each video's expected-latency gain from one more channel is
//! diminishing — the classic separable-concave resource-allocation
//! argument) that minimizes `Σ pᵥ·D₁ᵥ(Kᵥ)`.
//!
//! The worst-case guarantee is still per-video (`D₁ᵥ`); the allocator just
//! chooses whose guarantee to sharpen.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use crate::error::{Result, SchemeError};
use crate::series::{capped_sum, Width, MAX_SEGMENTS};

/// The result of an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Channels per video, aligned with the input probabilities.
    pub channels: Vec<usize>,
    /// Per-video worst-case latency `D₁ᵥ`, minutes.
    pub latencies: Vec<Minutes>,
    /// The popularity-weighted expected worst-case latency.
    pub expected_latency: Minutes,
}

fn d1(d: Minutes, k: usize, width: Width) -> f64 {
    d.value() / capped_sum(k.min(MAX_SEGMENTS), width) as f64
}

/// Distribute `total_channels` among videos with request probabilities
/// `popularity` (need not be normalized), all of length `d` and width
/// `width`, minimizing the expected worst-case latency. Every video
/// receives at least one channel.
pub fn allocate_channels(
    total_channels: usize,
    popularity: &[f64],
    d: Minutes,
    width: Width,
) -> Result<Allocation> {
    let m = popularity.len();
    if m == 0 {
        return Err(SchemeError::InvalidConfig {
            what: "allocation needs at least one video",
        });
    }
    if popularity.iter().any(|p| !(p.is_finite() && *p >= 0.0)) {
        return Err(SchemeError::InvalidConfig {
            what: "popularities must be finite and non-negative",
        });
    }
    if total_channels < m {
        return Err(SchemeError::InsufficientBandwidth {
            channels_per_video: total_channels / m,
            required: 1,
        });
    }
    let total_p: f64 = popularity.iter().sum();
    if total_p <= 0.0 {
        return Err(SchemeError::InvalidConfig {
            what: "at least one video must have positive popularity",
        });
    }

    let mut channels = vec![1usize; m];
    // Greedy: hand each spare channel to the video with the largest
    // marginal drop in p·D₁. Ties break toward the lower index for
    // determinism. (Marginal gains are non-increasing per video, so the
    // greedy is optimal for this separable objective.)
    for _ in m..total_channels {
        let mut best = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for (v, &p) in popularity.iter().enumerate() {
            if channels[v] >= MAX_SEGMENTS {
                continue;
            }
            let gain = p * (d1(d, channels[v], width) - d1(d, channels[v] + 1, width));
            if gain > best_gain + 1e-15 {
                best = v;
                best_gain = gain;
            }
        }
        channels[best] += 1;
    }

    let latencies: Vec<Minutes> = channels.iter().map(|&k| Minutes(d1(d, k, width))).collect();
    let expected = popularity
        .iter()
        .zip(&latencies)
        .map(|(p, l)| p / total_p * l.value())
        .sum();
    Ok(Allocation {
        channels,
        latencies,
        expected_latency: Minutes(expected),
    })
}

/// The §3.1 even split, for comparison: `⌊total/m⌋` channels each (the
/// remainder handed to the most popular titles first).
pub fn even_allocation(
    total_channels: usize,
    popularity: &[f64],
    d: Minutes,
    width: Width,
) -> Result<Allocation> {
    let m = popularity.len();
    if m == 0 || total_channels < m {
        return Err(SchemeError::InsufficientBandwidth {
            channels_per_video: total_channels.checked_div(m).unwrap_or(0),
            required: 1,
        });
    }
    let base = total_channels / m;
    let extra = total_channels % m;
    let channels: Vec<usize> = (0..m).map(|v| base + usize::from(v < extra)).collect();
    let total_p: f64 = popularity.iter().sum();
    let latencies: Vec<Minutes> = channels.iter().map(|&k| Minutes(d1(d, k, width))).collect();
    let expected = popularity
        .iter()
        .zip(&latencies)
        .map(|(p, l)| p / total_p * l.value())
        .sum();
    Ok(Allocation {
        channels,
        latencies,
        expected_latency: Minutes(expected),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn zipfish(m: usize) -> Vec<f64> {
        (1..=m).map(|i| (i as f64).powf(-0.729)).collect()
    }

    #[test]
    fn conserves_channels_and_orders_by_popularity() {
        let p = zipfish(10);
        let a = allocate_channels(200, &p, Minutes(120.0), Width::Capped(52)).unwrap();
        assert_eq!(a.channels.iter().sum::<usize>(), 200);
        // More popular ⇒ at least as many channels.
        for w in a.channels.windows(2) {
            assert!(w[0] >= w[1], "{:?}", a.channels);
        }
        // …and latency ordered the other way.
        for w in a.latencies.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn beats_the_even_split_under_skew() {
        let p = zipfish(10);
        let greedy = allocate_channels(200, &p, Minutes(120.0), Width::Capped(52)).unwrap();
        let even = even_allocation(200, &p, Minutes(120.0), Width::Capped(52)).unwrap();
        assert!(
            greedy.expected_latency.value() < even.expected_latency.value(),
            "greedy {} vs even {}",
            greedy.expected_latency,
            even.expected_latency
        );
    }

    #[test]
    fn uniform_popularity_recovers_the_even_split() {
        let p = vec![1.0; 8];
        let greedy = allocate_channels(80, &p, Minutes(120.0), Width::Capped(12)).unwrap();
        assert!(
            greedy.channels.iter().all(|&k| k == 10),
            "{:?}",
            greedy.channels
        );
        let even = even_allocation(80, &p, Minutes(120.0), Width::Capped(12)).unwrap();
        assert_eq!(greedy.channels, even.channels);
    }

    #[test]
    fn every_video_keeps_a_channel() {
        // Extreme skew must not starve the tail below one channel.
        let p = vec![1000.0, 1.0, 1.0, 1.0];
        let a = allocate_channels(40, &p, Minutes(120.0), Width::Unbounded).unwrap();
        assert!(a.channels.iter().all(|&k| k >= 1));
        assert!(a.channels[0] > a.channels[1]);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(allocate_channels(5, &[], Minutes(120.0), Width::Unbounded).is_err());
        assert!(allocate_channels(2, &[1.0; 5], Minutes(120.0), Width::Unbounded).is_err());
        assert!(allocate_channels(10, &[0.0; 5], Minutes(120.0), Width::Unbounded).is_err());
        assert!(allocate_channels(10, &[1.0, f64::NAN], Minutes(120.0), Width::Unbounded).is_err());
    }

    proptest! {
        #[test]
        fn greedy_never_loses_to_even(
            m in 2usize..12,
            total_mult in 2usize..20,
            skew in 0.0f64..1.5,
        ) {
            let p: Vec<f64> = (1..=m).map(|i| (i as f64).powf(-skew)).collect();
            let total = m * total_mult;
            let g = allocate_channels(total, &p, Minutes(120.0), Width::Capped(52)).unwrap();
            let e = even_allocation(total, &p, Minutes(120.0), Width::Capped(52)).unwrap();
            prop_assert!(g.expected_latency.value() <= e.expected_latency.value() + 1e-12);
            prop_assert_eq!(g.channels.iter().sum::<usize>(), total);
        }
    }
}
