//! The [`BroadcastScheme`] trait: what §5 measures about every scheme.
//!
//! The paper's performance study (Table 1) compares the schemes on three
//! client-side metrics as functions of the server bandwidth: access
//! latency, client I/O (disk) bandwidth, and client buffer space.
//! [`SchemeMetrics`] carries exactly those three numbers; the trait also
//! exposes the concrete [`ChannelPlan`] so the simulator can measure the
//! same quantities empirically.

use serde::{Deserialize, Serialize};
use vod_units::{MBytes, Mbits, Mbps, Minutes};

use crate::config::SystemConfig;
use crate::error::Result;
use crate::plan::ChannelPlan;

/// The paper's three performance metrics (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeMetrics {
    /// Worst-case service (access) latency.
    pub access_latency: Minutes,
    /// Client storage-I/O bandwidth requirement (Figure 6's y-axis, there
    /// plotted in MBytes/sec).
    pub client_io_bandwidth: Mbps,
    /// Client disk-buffer requirement (Figure 8's y-axis, there plotted in
    /// MBytes).
    pub buffer_requirement: Mbits,
}

impl SchemeMetrics {
    /// Figure 6's unit: client disk bandwidth in MBytes/sec.
    #[must_use]
    pub fn io_mbytes_per_sec(&self) -> f64 {
        self.client_io_bandwidth.to_mbytes_per_sec()
    }

    /// Figure 8's unit: buffer space in MBytes.
    #[must_use]
    pub fn buffer_mbytes(&self) -> MBytes {
        self.buffer_requirement.to_mbytes()
    }
}

/// A periodic-broadcast scheme for the popular-video set.
pub trait BroadcastScheme {
    /// Short tag used in figures and reports, e.g. `"SB:W=52"` or `"PB:a"`.
    fn name(&self) -> String;

    /// The analytic metrics for `cfg` (Table 1 evaluated at `cfg`).
    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics>;

    /// The concrete channel plan realizing the scheme for `cfg`.
    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_for_figures() {
        let m = SchemeMetrics {
            access_latency: Minutes(0.5),
            client_io_bandwidth: Mbps(4.5),
            buffer_requirement: Mbits(264.0),
        };
        assert!((m.io_mbytes_per_sec() - 0.5625).abs() < 1e-12);
        assert_eq!(m.buffer_mbytes(), MBytes(33.0));
    }
}
