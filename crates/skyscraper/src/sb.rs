//! [`Skyscraper`] — the paper's scheme as a [`BroadcastScheme`].
//!
//! Channel design (§3.1): the server bandwidth `B` is divided into
//! `⌊B/b⌋` logical channels of `b` Mb/s each, allocated evenly so each of
//! the `M` videos owns `K = ⌊B/(b·M)⌋` channels; channel `i` of a video
//! repeatedly broadcasts fragment `i` **at the display rate**. Analytic
//! metrics (§5's formula box):
//!
//! * access latency `= D₁ = D / Σ min(f(i), W)`,
//! * client I/O bandwidth `= b` if `W=1` or `K=1`; `2b` if `W=2` or
//!   `K ∈ {2,3}`; `3b` otherwise,
//! * buffer `= 60·b·D₁·(W_eff − 1)` Mbits, with
//!   `W_eff = min(W, f(K))`.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use crate::config::SystemConfig;
use crate::error::{Result, SchemeError};
use crate::fragment::Fragmentation;
use crate::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use crate::scheme::{BroadcastScheme, SchemeMetrics};
use crate::series::Width;

/// The Skyscraper Broadcasting scheme with a chosen width `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Skyscraper {
    /// The width cap.
    pub width: Width,
}

impl Skyscraper {
    /// An uncapped scheme (`W = ∞`, the paper's "SB:W=infinite" curves).
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            width: Width::Unbounded,
        }
    }

    /// A scheme with the given (already validated) width.
    #[must_use]
    pub fn with_width(width: Width) -> Self {
        Self { width }
    }

    /// Channels dedicated to each video: `K = ⌊B/(b·M)⌋` (§3.1).
    pub fn channels_per_video(&self, cfg: &SystemConfig) -> Result<usize> {
        cfg.validate()?;
        let k = cfg.channels_ratio().floor() as usize;
        if k < 1 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: k,
                required: 1,
            });
        }
        Ok(k.min(crate::series::MAX_SEGMENTS))
    }

    /// The fragmentation this scheme induces for `cfg`.
    pub fn fragmentation(&self, cfg: &SystemConfig) -> Result<Fragmentation> {
        let k = self.channels_per_video(cfg)?;
        Fragmentation::new(cfg.video_length, k, self.width)
    }

    /// The client I/O bandwidth rule from §5's formula box.
    #[must_use]
    pub fn client_io_bandwidth(width: Width, k: usize, display_rate: Mbps) -> Mbps {
        let streams = match (width, k) {
            (_, 1) | (Width::Capped(1), _) => 1.0,
            (_, 2 | 3) | (Width::Capped(2), _) => 2.0,
            _ => 3.0,
        };
        Mbps(display_rate.value() * streams)
    }
}

impl BroadcastScheme for Skyscraper {
    fn name(&self) -> String {
        format!("SB:{}", self.width)
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let frag = self.fragmentation(cfg)?;
        let d1 = frag.access_latency();
        let w_eff = frag.effective_width();
        Ok(SchemeMetrics {
            access_latency: d1,
            client_io_bandwidth: Self::client_io_bandwidth(self.width, frag.k, cfg.display_rate),
            // 60·b·D₁·(W_eff − 1); `Mbps × Minutes` applies the 60.
            buffer_requirement: cfg.display_rate * Minutes(d1.value() * (w_eff - 1) as f64),
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let frag = self.fragmentation(cfg)?;
        let mut segment_sizes = Vec::with_capacity(cfg.num_videos);
        let mut channels = Vec::with_capacity(cfg.num_videos * frag.k);
        for v in 0..cfg.num_videos {
            let sizes: Vec<_> = (0..frag.k)
                .map(|i| frag.size(i, cfg.display_rate))
                .collect();
            for (i, &size) in sizes.iter().enumerate() {
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate: cfg.display_rate,
                    phase: Minutes(0.0),
                    cycle: vec![ScheduledSegment {
                        item: BroadcastItem {
                            video: VideoId(v),
                            segment: i,
                        },
                        size,
                        // at display rate, on-air time equals playback time
                        on_air: frag.duration(i),
                    }],
                });
            }
            segment_sizes.push(sizes);
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_units::MBytes;

    #[test]
    fn k_rule_matches_paper() {
        // B = 300, b = 1.5, M = 10 → K = 20.
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        assert_eq!(
            Skyscraper::unbounded().channels_per_video(&cfg).unwrap(),
            20
        );
        // B = 100 → K = ⌊6.66⌋ = 6.
        let cfg = SystemConfig::paper_defaults(Mbps(100.0));
        assert_eq!(Skyscraper::unbounded().channels_per_video(&cfg).unwrap(), 6);
    }

    #[test]
    fn insufficient_bandwidth_rejected() {
        let cfg = SystemConfig::paper_defaults(Mbps(10.0)); // K = 0
        assert!(matches!(
            Skyscraper::unbounded().channels_per_video(&cfg),
            Err(SchemeError::InsufficientBandwidth { .. })
        ));
    }

    #[test]
    fn paper_spot_check_b320_w2() {
        // §5.4: "when B is about 320 Mbits/sec … SB scheme with W = 2 …
        // requires only 33 MBytes of disk space at the receiving end."
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let m = Skyscraper::with_width(Width::Capped(2))
            .metrics(&cfg)
            .unwrap();
        let buf = m.buffer_mbytes();
        assert!(
            (buf.value() - 33.0).abs() < 1.5,
            "expected ≈33 MB, got {buf}"
        );
        // I/O bandwidth 2b for W=2.
        assert_eq!(m.client_io_bandwidth, Mbps(3.0));
    }

    #[test]
    fn paper_spot_check_b600_w52() {
        // §5.4: at B = 600, W = 52 → ≈40 MB buffer and ≈0.1 min latency.
        let cfg = SystemConfig::paper_defaults(Mbps(600.0));
        let m = Skyscraper::with_width(Width::Capped(52))
            .metrics(&cfg)
            .unwrap();
        assert!(
            (m.access_latency.value() - 0.1).abs() < 0.03,
            "{}",
            m.access_latency
        );
        let buf = m.buffer_mbytes();
        assert!(
            (buf.value() - 40.0).abs() < 8.0,
            "expected ≈40 MB, got {buf}"
        );
        assert_eq!(m.client_io_bandwidth, Mbps(4.5)); // 3b
    }

    #[test]
    fn io_bandwidth_rule() {
        let b = Mbps(1.5);
        assert_eq!(
            Skyscraper::client_io_bandwidth(Width::Capped(1), 20, b),
            Mbps(1.5)
        );
        assert_eq!(
            Skyscraper::client_io_bandwidth(Width::Capped(52), 1, b),
            Mbps(1.5)
        );
        assert_eq!(
            Skyscraper::client_io_bandwidth(Width::Capped(2), 20, b),
            Mbps(3.0)
        );
        assert_eq!(
            Skyscraper::client_io_bandwidth(Width::Capped(52), 3, b),
            Mbps(3.0)
        );
        assert_eq!(
            Skyscraper::client_io_bandwidth(Width::Unbounded, 20, b),
            Mbps(4.5)
        );
    }

    #[test]
    fn plan_is_valid_and_display_rate() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let scheme = Skyscraper::with_width(Width::Capped(52));
        let plan = scheme.plan(&cfg).unwrap();
        plan.validate(cfg.server_bandwidth).unwrap();
        // M·K channels, all at b.
        assert_eq!(plan.channels.len(), 10 * 20);
        assert!(plan.channels.iter().all(|c| c.rate == Mbps(1.5)));
        // Total bandwidth = M·K·b = 300 exactly here.
        assert!(plan.total_bandwidth().approx_eq(Mbps(300.0), 1e-9));
    }

    #[test]
    fn uncapped_buffer_uses_effective_width() {
        // At B=150 (K=10) the largest fragment is f(10)=52 even uncapped,
        // so W=∞ and W=52 coincide everywhere.
        let cfg = SystemConfig::paper_defaults(Mbps(150.0));
        let unb = Skyscraper::unbounded().metrics(&cfg).unwrap();
        let w52 = Skyscraper::with_width(Width::Capped(52))
            .metrics(&cfg)
            .unwrap();
        assert_eq!(unb.buffer_requirement, w52.buffer_requirement);
        assert_eq!(unb.access_latency, w52.access_latency);
    }

    #[test]
    fn buffer_scales_like_w_minus_one() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let m2 = Skyscraper::with_width(Width::Capped(2))
            .metrics(&cfg)
            .unwrap();
        let m5 = Skyscraper::with_width(Width::Capped(5))
            .metrics(&cfg)
            .unwrap();
        // D₁ differs, but buffer ratio ≈ (5−1)/(2−1) × (D₁ ratio).
        let d1_2 = m2.access_latency.value();
        let d1_5 = m5.access_latency.value();
        let expect = 4.0 * d1_5 / d1_2;
        let got = m5.buffer_requirement.value() / m2.buffer_requirement.value();
        assert!((got - expect).abs() < 1e-9);
        let _ = MBytes(0.0); // keep import used in all cfgs
    }
}
