//! Transmission groups and the three group-transition types of §4.
//!
//! §3.3: "reception of segments is done in terms of *transmission group*,
//! which is defined as consecutive segments having the same sizes". In the
//! capped series `[1, 2, 2, 5, 5, 12, 12, …]` the groups are `(1)`, `(2,2)`,
//! `(5,5)`, `(12,12)`, … and — once the width cap `W` bites — one final
//! long run `(W, W, …, W)`. A group whose unit size is odd is an *odd
//! group*, handled by the client's Odd Loader; even groups go to the Even
//! Loader. Because consecutive distinct series values alternate parity
//! (see [`crate::series`]), the two loaders strictly alternate.
//!
//! §4 classifies the transitions between consecutive groups into three
//! types, each with its own worst-case buffer bound; [`GroupTransition`]
//! reproduces that classification and [`GroupTransition::buffer_bound_units`]
//! the per-transition bound read off the paper's Figures 1–4.

use serde::{Deserialize, Serialize};

/// Which client loader services a group (§3.3's Odd Loader / Even Loader).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parity {
    /// Groups whose unit size is odd.
    Odd,
    /// Groups whose unit size is even.
    Even,
}

impl Parity {
    /// Parity of a unit size.
    #[must_use]
    pub fn of(unit: u64) -> Self {
        if unit % 2 == 1 {
            Parity::Odd
        } else {
            Parity::Even
        }
    }

    /// The other loader.
    #[must_use]
    pub fn other(self) -> Self {
        match self {
            Parity::Odd => Parity::Even,
            Parity::Even => Parity::Odd,
        }
    }
}

/// A maximal run of equal-size fragments, downloaded contiguously by one
/// loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionGroup {
    /// Index of the group within the video (0-based).
    pub index: usize,
    /// Index of the group's first segment (0-based).
    pub first_segment: usize,
    /// Number of segments in the group.
    pub len: usize,
    /// The common unit size `A` of the group's segments.
    pub unit: u64,
}

impl TransmissionGroup {
    /// The loader that services this group.
    #[must_use]
    pub fn parity(&self) -> Parity {
        Parity::of(self.unit)
    }

    /// Total duration of the group in slot units (`len × unit`).
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.len as u64 * self.unit
    }

    /// Index one past the group's last segment.
    #[must_use]
    pub fn end_segment(&self) -> usize {
        self.first_segment + self.len
    }
}

/// Decompose a capped unit vector into its transmission groups.
///
/// # Panics
/// Panics if `units` is empty or contains a zero.
#[must_use]
pub fn group_segments(units: &[u64]) -> Vec<TransmissionGroup> {
    assert!(!units.is_empty(), "a video must have at least one segment");
    assert!(units.iter().all(|&u| u > 0), "unit sizes must be positive");
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=units.len() {
        if i == units.len() || units[i] != units[start] {
            out.push(TransmissionGroup {
                index: out.len(),
                first_segment: start,
                len: i - start,
                unit: units[start],
            });
            start = i;
        }
    }
    out
}

/// The three §4 transition types between consecutive groups, plus the
/// degenerate continuation within a width-capped tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupTransition {
    /// Type 1: `(1) → (2,2)` — only at the very start of playback
    /// (Figure 1). Worst-case extra buffer: 1 unit.
    Initial,
    /// Type 2: `(A,A) → (2A+1, 2A+1)` with `A` even (Figure 2).
    /// Worst-case extra buffer: `2A` units.
    EvenToOdd {
        /// The source group's unit size `A` (even).
        a: u64,
    },
    /// Type 3: `(A,A) → (2A+2, 2A+2)` with `A` odd (Figures 3 and 4).
    /// Worst-case extra buffer: `A−1` units... dominated by type 2 and by
    /// the final capped transition in every capped series.
    OddToEven {
        /// The source group's unit size `A` (odd).
        a: u64,
    },
    /// Transition into the width-capped tail `(X,X) → (W, W, …, W)` where
    /// the successor's unit equals the cap rather than `2X+1`/`2X+2`.
    /// Worst-case extra buffer: `W−1` units (§4's concluding formula).
    IntoCap {
        /// The source group's unit size.
        from: u64,
        /// The cap `W`.
        w: u64,
    },
}

impl GroupTransition {
    /// Classify the transition from `from` to `to`.
    ///
    /// # Panics
    /// Panics if the pair cannot arise from a (possibly capped) broadcast
    /// series — i.e. it is neither `1→2`, `A→2A+1` (A even), `A→2A+2`
    /// (A odd), nor a cap (`to < ` the uncapped successor).
    #[must_use]
    pub fn classify(from: u64, to: u64) -> Self {
        assert!(
            from >= 1 && to > from,
            "groups must strictly grow: {from} → {to}"
        );
        if from == 1 && to == 2 {
            return GroupTransition::Initial;
        }
        let uncapped = if from % 2 == 0 {
            2 * from + 1
        } else {
            2 * from + 2
        };
        if to == uncapped {
            if from % 2 == 0 {
                GroupTransition::EvenToOdd { a: from }
            } else {
                GroupTransition::OddToEven { a: from }
            }
        } else if to < uncapped {
            GroupTransition::IntoCap { from, w: to }
        } else {
            panic!("transition {from} → {to} is not realizable by a capped broadcast series")
        }
    }

    /// The paper's worst-case buffer occupancy caused by this transition,
    /// in slot units of data (multiply by `60·b·D₁` Mbits).
    ///
    /// Read off the bottom plots of Figures 1–4: the overall curve peaks at
    /// `60·b·D₁·(next − 1)` where `next` is the destination group's unit —
    /// `2A` for type 2 (`next = 2A+1`), and `W−1` for the capped tail. §4
    /// concludes the global requirement is the last transition's bound,
    /// `60·b·D₁·(W−1)`.
    #[must_use]
    pub fn buffer_bound_units(&self) -> u64 {
        match *self {
            GroupTransition::Initial => 1,
            GroupTransition::EvenToOdd { a } => 2 * a,
            GroupTransition::OddToEven { a } => 2 * a + 1,
            GroupTransition::IntoCap { w, .. } => w - 1,
        }
    }
}

/// Classify every transition in a grouped unit vector, in order.
#[must_use]
pub fn transitions(groups: &[TransmissionGroup]) -> Vec<GroupTransition> {
    groups
        .windows(2)
        .map(|w| GroupTransition::classify(w[0].unit, w[1].unit))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{capped_series, series, Width};
    use proptest::prelude::*;

    #[test]
    fn groups_of_uncapped_prefix() {
        // §3.3's example: first group (1); second (2,2); third (5,5); …
        let g = group_segments(&series(7));
        assert_eq!(g.len(), 4);
        assert_eq!((g[0].unit, g[0].len, g[0].first_segment), (1, 1, 0));
        assert_eq!((g[1].unit, g[1].len, g[1].first_segment), (2, 2, 1));
        assert_eq!((g[2].unit, g[2].len, g[2].first_segment), (5, 2, 3));
        assert_eq!((g[3].unit, g[3].len, g[3].first_segment), (12, 2, 5));
        assert_eq!(g[1].total_units(), 4);
        assert_eq!(g[2].end_segment(), 5);
    }

    #[test]
    fn capped_tail_is_one_group() {
        // W=5, K=9: [1,2,2,5,5,5,5,5,5] → (1), (2,2), (5 × 6)
        let g = group_segments(&capped_series(9, 5));
        assert_eq!(g.len(), 3);
        assert_eq!((g[2].unit, g[2].len), (5, 6));
    }

    #[test]
    fn parities_alternate() {
        for k in 1..=40 {
            let g = group_segments(&series(k));
            for w in g.windows(2) {
                assert_eq!(w[0].parity(), w[1].parity().other());
            }
        }
    }

    #[test]
    fn first_group_is_odd() {
        let g = group_segments(&series(10));
        assert_eq!(g[0].parity(), Parity::Odd);
        assert_eq!(Parity::of(1), Parity::Odd);
        assert_eq!(Parity::of(2), Parity::Even);
    }

    #[test]
    fn transition_classification() {
        assert_eq!(GroupTransition::classify(1, 2), GroupTransition::Initial);
        assert_eq!(
            GroupTransition::classify(2, 5),
            GroupTransition::EvenToOdd { a: 2 }
        );
        assert_eq!(
            GroupTransition::classify(5, 12),
            GroupTransition::OddToEven { a: 5 }
        );
        assert_eq!(
            GroupTransition::classify(12, 25),
            GroupTransition::EvenToOdd { a: 12 }
        );
    }

    #[test]
    #[should_panic(expected = "not realizable")]
    fn bogus_transition_rejected() {
        let _ = GroupTransition::classify(2, 6);
    }

    #[test]
    fn figure2_buffer_bound() {
        // Figure 2's plot: transition (A,A)→(2A+1,2A+1) peaks at 60·b·D₁·2A.
        let t = GroupTransition::classify(12, 25);
        assert_eq!(t.buffer_bound_units(), 24);
    }

    #[test]
    fn whole_series_transitions_classify() {
        let g = group_segments(&series(30));
        let ts = transitions(&g);
        assert_eq!(ts.len(), g.len() - 1);
        assert_eq!(ts[0], GroupTransition::Initial);
    }

    #[test]
    fn capped_transition_bound_is_w_minus_1() {
        // W=52 tail: (25,25) → (52,…): with cap 52 == uncapped 2·25+2, so
        // the *cap* only shows as IntoCap for caps below the natural child.
        let g = group_segments(&capped_series(12, 12));
        let ts = transitions(&g);
        let last = *ts.last().unwrap();
        assert_eq!(last, GroupTransition::OddToEven { a: 5 });
        assert_eq!(last.buffer_bound_units(), 11); // W−1 = 12−1

        // A genuinely early cap: units [1,2,2,5,5,5…] has last transition
        // (2,2)→(5,…): bound 5−1 = 4 = W−1.
        let g = group_segments(&capped_series(9, 5));
        let last = *transitions(&g).last().unwrap();
        assert_eq!(last.buffer_bound_units(), 4);
    }

    proptest! {
        #[test]
        fn groups_partition_segments(k in 1usize..=60, wi in 0usize..12) {
            let w = if wi == 0 { Width::Unbounded } else { Width::capped_lossy(crate::series::unit(2 * wi)) };
            let units = w.units(k);
            let g = group_segments(&units);
            // groups tile [0, k)
            let mut next = 0usize;
            for grp in &g {
                prop_assert_eq!(grp.first_segment, next);
                next = grp.end_segment();
                // all segments in group share the unit
                for &u in &units[grp.first_segment..grp.end_segment()] {
                    prop_assert_eq!(u, grp.unit);
                }
            }
            prop_assert_eq!(next, k);
            // maximality: adjacent groups differ in unit
            for w in g.windows(2) {
                prop_assert_ne!(w[0].unit, w[1].unit);
            }
        }

        #[test]
        fn max_transition_bound_is_effective_width_minus_one(k in 2usize..=60, wi in 1usize..12) {
            let w = Width::capped_lossy(crate::series::unit(2 * wi));
            let units = w.units(k);
            let g = group_segments(&units);
            if g.len() >= 2 {
                let max_bound = transitions(&g)
                    .iter()
                    .map(GroupTransition::buffer_bound_units)
                    .max()
                    .unwrap();
                let w_eff = w.effective(k);
                prop_assert_eq!(max_bound, w_eff - 1);
            }
        }
    }
}
