//! The paper's system model: a server of bandwidth `B` periodically
//! broadcasting `M` popular videos of length `D` at display rate `b`.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

use crate::error::{Result, SchemeError};

/// The `(B, M, D, b)` quadruple of §2's notation table.
///
/// * `B` — server (network-I/O) bandwidth in Mbits/sec,
/// * `M` — number of videos being periodically broadcast,
/// * `D` — length of each video in minutes,
/// * `b` — display (consumption) rate of each video in Mbits/sec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Total server network-I/O bandwidth `B`.
    pub server_bandwidth: Mbps,
    /// Number of popular videos `M` served by periodic broadcast.
    pub num_videos: usize,
    /// Playback duration `D` of each video.
    pub video_length: Minutes,
    /// Display rate `b` of each video.
    pub display_rate: Mbps,
}

impl SystemConfig {
    /// §5's evaluation setting: `M = 10` popular videos, `D = 120` minutes,
    /// MPEG-1 compression so `b = 1.5` Mb/s; the server bandwidth is the
    /// swept variable (100–600 Mb/s in the paper's figures).
    #[must_use]
    pub fn paper_defaults(server_bandwidth: Mbps) -> Self {
        Self {
            server_bandwidth,
            num_videos: 10,
            video_length: Minutes(120.0),
            display_rate: Mbps(1.5),
        }
    }

    /// Validate the configuration (positive, finite quantities).
    pub fn validate(&self) -> Result<()> {
        let pos = |v: f64| v.is_finite() && v > 0.0;
        if !pos(self.server_bandwidth.value()) {
            return Err(SchemeError::InvalidConfig {
                what: "server bandwidth must be positive and finite",
            });
        }
        if self.num_videos == 0 {
            return Err(SchemeError::InvalidConfig {
                what: "at least one video is required",
            });
        }
        if !pos(self.video_length.value()) {
            return Err(SchemeError::InvalidConfig {
                what: "video length must be positive and finite",
            });
        }
        if !pos(self.display_rate.value()) {
            return Err(SchemeError::InvalidConfig {
                what: "display rate must be positive and finite",
            });
        }
        Ok(())
    }

    /// Size of one whole video in Mbits (`60·b·D`).
    #[must_use]
    pub fn video_size(&self) -> Mbits {
        self.display_rate * self.video_length
    }

    /// The bandwidth ratio `B / (b·M)` — how many display-rate channels the
    /// server can dedicate to each video. Every scheme's channel-count rule
    /// is a rounding of this.
    #[must_use]
    pub fn channels_ratio(&self) -> f64 {
        self.server_bandwidth.value() / (self.display_rate.value() * self.num_videos as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        assert_eq!(cfg.num_videos, 10);
        assert_eq!(cfg.video_length, Minutes(120.0));
        assert_eq!(cfg.display_rate, Mbps(1.5));
        assert_eq!(cfg.video_size(), Mbits(10_800.0));
        assert!((cfg.channels_ratio() - 20.0).abs() < 1e-12);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut cfg = SystemConfig::paper_defaults(Mbps(0.0));
        assert!(cfg.validate().is_err());
        cfg.server_bandwidth = Mbps(100.0);
        cfg.num_videos = 0;
        assert!(cfg.validate().is_err());
        cfg.num_videos = 10;
        cfg.video_length = Minutes(f64::NAN);
        assert!(cfg.validate().is_err());
        cfg.video_length = Minutes(120.0);
        cfg.display_rate = Mbps(-1.5);
        assert!(cfg.validate().is_err());
    }
}
