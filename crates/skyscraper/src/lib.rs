//! # Skyscraper Broadcasting
//!
//! A from-scratch implementation of **Skyscraper Broadcasting (SB)**, the
//! periodic-broadcast scheme for metropolitan video-on-demand systems
//! introduced by Kien A. Hua and Simon Sheu at SIGCOMM 1997.
//!
//! ## The scheme in one paragraph
//!
//! A video of length `D` minutes is cut into `K` fragments whose lengths
//! follow the integer *broadcast series* `[1, 2, 2, 5, 5, 12, 12, 25, 25,
//! 52, 52, …]`, capped at a configurable *width* `W` (so fragment `i` is
//! `min(f(i), W)` *units*, one unit being `D₁ = D / Σ min(f(i), W)`
//! minutes). Each fragment is broadcast cyclically on its own logical
//! channel **at the video's display rate** `b`. A client tunes only to the
//! *beginning* of broadcasts and downloads *transmission groups* (maximal
//! runs of equal-size fragments) with exactly two loaders — an *odd* and an
//! *even* loader, named for the parity of the group's unit size — while a
//! player consumes the shared buffer at `b`. The result: worst-case
//! start-up latency `D₁`, client I/O bandwidth at most `3b`, and client
//! buffer `60·b·D₁·(W−1)` Mbits.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`series`] | the broadcast series `f(n)` (recurrence + closed form), width capping |
//! | [`groups`] | transmission groups, parities, and the three §4 transition types |
//! | [`custom`] | generalized (validated) broadcast series — §6's closing remark |
//! | [`heterogeneous`] | plans for catalogs of videos with different lengths |
//! | [`allocation`] | popularity-aware channel allocation across the catalog |
//! | [`fragment`] | the data-fragmentation step: units → fragment durations/sizes |
//! | [`config`] | [`SystemConfig`]: the paper's `(B, M, D, b)` quadruple |
//! | [`plan`] | scheme-agnostic broadcast plans (channels with cyclic schedules) |
//! | [`scheme`] | the [`BroadcastScheme`] trait and analytic [`SchemeMetrics`] |
//! | [`client`] | exact integer *slot-level* client model: loader schedules, jitter check, buffer profile |
//! | [`width`] | choosing `W` from a latency target (the §3.2 trade-off knob) |
//! | [`sb`] | [`Skyscraper`], tying everything together as a `BroadcastScheme` |
//!
//! The slot-level client model in [`client`] is the heart of the
//! reproduction of the paper's §4 correctness and storage analysis: because
//! every SB fragment length is an integer multiple of `D₁` and every
//! broadcast starts on a slot boundary, the entire client timeline can be
//! computed in exact integer arithmetic and the paper's claims (jitter-free
//! playback, ≤ 2 concurrent loaders, peak buffer `60·b·D₁·(W−1)`) can be
//! *checked*, not just plotted.
//!
//! ## Quick start
//!
//! ```
//! use sb_core::prelude::*;
//!
//! // The paper's evaluation setting: 10 videos, 120 min, MPEG-1 (1.5 Mb/s),
//! // with a 300 Mb/s server.
//! let cfg = SystemConfig::paper_defaults(Mbps(300.0));
//! let scheme = Skyscraper::with_width(Width::capped(52).unwrap());
//! let metrics = scheme.metrics(&cfg).unwrap();
//!
//! // K = ⌊300 / (1.5 · 10)⌋ = 20 channels per video.
//! assert_eq!(scheme.channels_per_video(&cfg).unwrap(), 20);
//! // §5.4: above 200 Mb/s, W = 52 gives ≈0.1–0.2 min latency for well
//! // under 200 MBytes of client buffer.
//! assert!(metrics.access_latency.value() < 0.2);
//! assert!(metrics.buffer_requirement.to_mbytes().value() < 200.0);
//! ```

#![forbid(unsafe_code)]

pub mod allocation;
pub mod client;
pub mod config;
pub mod custom;
pub mod error;
pub mod fragment;
pub mod groups;
pub mod heterogeneous;
pub mod plan;
pub mod sb;
pub mod scheme;
pub mod series;
pub mod width;

pub use allocation::{allocate_channels, even_allocation, Allocation};
pub use client::{ClientTimeline, GroupDownload, LoaderId};
pub use config::SystemConfig;
pub use custom::{greedy_max_series, CustomSkyscraper, PhaseBudget, ValidatedSeries};
pub use error::SchemeError;
pub use fragment::Fragmentation;
pub use groups::{GroupTransition, TransmissionGroup};
pub use plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
pub use sb::Skyscraper;
pub use scheme::{BroadcastScheme, SchemeMetrics};
pub use series::Width;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::client::ClientTimeline;
    pub use crate::config::SystemConfig;
    pub use crate::error::SchemeError;
    pub use crate::fragment::Fragmentation;
    pub use crate::plan::{ChannelPlan, VideoId};
    pub use crate::sb::Skyscraper;
    pub use crate::scheme::{BroadcastScheme, SchemeMetrics};
    pub use crate::series::Width;
    pub use vod_units::{MBytes, Mbits, Mbps, Minutes, Seconds};
}
