//! Error types shared by every broadcasting scheme in the workspace.

use core::fmt;

/// Reasons a broadcasting scheme cannot be instantiated for a given system
/// configuration.
///
/// The paper itself runs into these: "PB and PPB do not work if the server
/// bandwidth is less than 90 Mbits/sec (i.e., α becomes less than one)"
/// (§5.1) — that situation surfaces here as [`SchemeError::AlphaTooSmall`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeError {
    /// The server bandwidth is too small to give each video even one
    /// dedicated channel (SB needs `K = ⌊B/(b·M)⌋ ≥ 1`).
    InsufficientBandwidth {
        /// Channels per video that the configuration yields.
        channels_per_video: usize,
        /// Minimum required by the scheme.
        required: usize,
    },
    /// The pyramid geometric factor α = B/(b·M·K) came out ≤ 1, so the
    /// fragment sizes would not increase and the scheme's continuity
    /// condition cannot hold.
    AlphaTooSmall {
        /// The computed α.
        alpha: f64,
    },
    /// A width value that is not a member of the broadcast series was
    /// requested. Capping at a non-member value would merge transmission
    /// groups of equal parity, breaking the two-loader schedule of §3.3.
    InvalidWidth {
        /// The offending width.
        width: u64,
        /// The largest series member not exceeding the request, offered as
        /// a fix-up.
        nearest_below: u64,
    },
    /// A configuration parameter was non-positive or non-finite.
    InvalidConfig {
        /// Human-readable description of the offending field.
        what: &'static str,
    },
    /// The derived number of segments per video exceeds what the
    /// implementation supports (series values overflow `u64` far beyond any
    /// physical configuration; this guards the arithmetic).
    TooManySegments {
        /// The requested segment count.
        requested: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::InsufficientBandwidth {
                channels_per_video,
                required,
            } => write!(
                f,
                "server bandwidth yields {channels_per_video} channel(s) per video, \
                 scheme requires at least {required}"
            ),
            SchemeError::AlphaTooSmall { alpha } => write!(
                f,
                "pyramid geometric factor α = {alpha:.4} ≤ 1; increase server bandwidth \
                 (the paper notes PB/PPB need B ≥ ~90 Mb/s at M=10, b=1.5)"
            ),
            SchemeError::InvalidWidth {
                width,
                nearest_below,
            } => write!(
                f,
                "width {width} is not a broadcast-series value; nearest valid width below \
                 is {nearest_below}"
            ),
            SchemeError::InvalidConfig { what } => {
                write!(f, "invalid system configuration: {what}")
            }
            SchemeError::TooManySegments { requested, max } => {
                write!(
                    f,
                    "{requested} segments requested, implementation supports {max}"
                )
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// Workspace-wide result alias.
pub type Result<T, E = SchemeError> = core::result::Result<T, E>;
