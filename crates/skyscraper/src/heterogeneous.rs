//! Heterogeneous catalogs: Skyscraper plans for videos of *different*
//! lengths.
//!
//! The paper's evaluation assumes `M` identical videos (`D = 120` for
//! all), but nothing in the scheme requires that: each video is
//! fragmented independently, so a per-video slot `D₁ᵥ = Dᵥ / Σ min(f(i), W)`
//! falls out naturally — shorter films simply get shorter slots and
//! therefore *better* worst-case latency from the same channel count.
//! This module builds such plans and reports per-video metrics.
//!
//! Channel allocation remains the §3.1 rule applied to the catalog: every
//! video receives `K = ⌊B/(b·M)⌋` display-rate channels (the server's
//! cost is per channel, not per minute of content).

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use crate::config::SystemConfig;
use crate::error::{Result, SchemeError};
use crate::fragment::Fragmentation;
use crate::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use crate::sb::Skyscraper;
use crate::scheme::SchemeMetrics;
use crate::series::Width;

/// One video of a heterogeneous catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroVideo {
    /// Playback length.
    pub length: Minutes,
}

/// Per-video outcome of a heterogeneous plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerVideoMetrics {
    /// The video.
    pub video: VideoId,
    /// Its slot `D₁ᵥ` (= its worst-case access latency).
    pub slot: Minutes,
    /// Its client-buffer requirement, `60·b·D₁ᵥ·(W_eff − 1)` Mbits.
    pub metrics: SchemeMetrics,
}

/// A Skyscraper plan over a heterogeneous catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousPlan {
    /// The channel plan (consumable by the simulator like any other).
    pub plan: ChannelPlan,
    /// Per-video metrics, indexed by `VideoId`.
    pub per_video: Vec<PerVideoMetrics>,
    /// Channels dedicated to each video.
    pub channels_per_video: usize,
}

impl HeterogeneousPlan {
    /// The worst access latency over the catalog (the longest video's).
    #[must_use]
    pub fn worst_latency(&self) -> Minutes {
        self.per_video
            .iter()
            .map(|m| m.metrics.access_latency)
            .fold(Minutes(0.0), Minutes::max)
    }

    /// The worst client-buffer requirement over the catalog.
    #[must_use]
    pub fn worst_buffer(&self) -> vod_units::Mbits {
        self.per_video
            .iter()
            .map(|m| m.metrics.buffer_requirement)
            .fold(vod_units::Mbits::ZERO, vod_units::Mbits::max)
    }
}

/// Build a Skyscraper plan for videos of different lengths.
///
/// `server_bandwidth` and `display_rate` play their usual roles; every
/// video gets `⌊B/(b·M)⌋` channels and the width `width`.
pub fn plan_heterogeneous(
    server_bandwidth: Mbps,
    display_rate: Mbps,
    videos: &[HeteroVideo],
    width: Width,
) -> Result<HeterogeneousPlan> {
    if videos.is_empty() {
        return Err(SchemeError::InvalidConfig {
            what: "a heterogeneous catalog needs at least one video",
        });
    }
    // Reuse the homogeneous K rule via a representative config.
    let cfg = SystemConfig {
        server_bandwidth,
        num_videos: videos.len(),
        video_length: videos[0].length,
        display_rate,
    };
    let scheme = Skyscraper::with_width(width);
    let k = scheme.channels_per_video(&cfg)?;

    let mut segment_sizes = Vec::with_capacity(videos.len());
    let mut channels = Vec::with_capacity(videos.len() * k);
    let mut per_video = Vec::with_capacity(videos.len());
    for (v, video) in videos.iter().enumerate() {
        let frag = Fragmentation::new(video.length, k, width)?;
        let sizes: Vec<_> = (0..k).map(|i| frag.size(i, display_rate)).collect();
        for (i, &size) in sizes.iter().enumerate() {
            channels.push(LogicalChannel {
                id: channels.len(),
                rate: display_rate,
                phase: Minutes(0.0),
                cycle: vec![ScheduledSegment {
                    item: BroadcastItem {
                        video: VideoId(v),
                        segment: i,
                    },
                    size,
                    on_air: frag.duration(i),
                }],
            });
        }
        let d1 = frag.access_latency();
        let w_eff = frag.effective_width();
        per_video.push(PerVideoMetrics {
            video: VideoId(v),
            slot: d1,
            metrics: SchemeMetrics {
                access_latency: d1,
                client_io_bandwidth: Skyscraper::client_io_bandwidth(width, k, display_rate),
                buffer_requirement: display_rate * Minutes(d1.value() * (w_eff - 1) as f64),
            },
        });
        segment_sizes.push(sizes);
    }
    Ok(HeterogeneousPlan {
        plan: ChannelPlan {
            scheme: format!("SB:{width}:hetero"),
            segment_sizes,
            channels,
        },
        per_video,
        channels_per_video: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::BroadcastScheme as _;

    fn catalog() -> Vec<HeteroVideo> {
        [95.0, 120.0, 150.0, 87.0, 133.0]
            .into_iter()
            .map(|m| HeteroVideo { length: Minutes(m) })
            .collect()
    }

    #[test]
    fn per_video_slots_scale_with_length() {
        // B = 150 over 5 videos → K = 20 each.
        let hp = plan_heterogeneous(Mbps(150.0), Mbps(1.5), &catalog(), Width::Capped(52)).unwrap();
        assert_eq!(hp.channels_per_video, 20);
        hp.plan.validate(Mbps(150.0)).unwrap();
        // Latency proportional to length: video 2 (150 min) worst.
        let worst = hp.worst_latency();
        assert_eq!(
            hp.per_video
                .iter()
                .max_by(|a, b| a.slot.partial_cmp(&b.slot).unwrap())
                .unwrap()
                .video,
            VideoId(2)
        );
        let v2 = &hp.per_video[2];
        let v3 = &hp.per_video[3]; // 87 min, shortest
        assert!((v2.slot.value() / v3.slot.value() - 150.0 / 87.0).abs() < 1e-9);
        assert_eq!(worst, v2.metrics.access_latency);
    }

    #[test]
    fn homogeneous_special_case_matches_skyscraper() {
        let videos = vec![
            HeteroVideo {
                length: Minutes(120.0)
            };
            10
        ];
        let hp = plan_heterogeneous(Mbps(300.0), Mbps(1.5), &videos, Width::Capped(52)).unwrap();
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let homo = Skyscraper::with_width(Width::Capped(52))
            .metrics(&cfg)
            .unwrap();
        for m in &hp.per_video {
            assert!(m
                .metrics
                .access_latency
                .approx_eq(homo.access_latency, 1e-12));
            assert!(m
                .metrics
                .buffer_requirement
                .approx_eq(homo.buffer_requirement, 1e-9));
        }
        assert!(hp.worst_buffer().approx_eq(homo.buffer_requirement, 1e-9));
    }

    #[test]
    fn clients_of_every_length_are_jitter_free() {
        // Exercise the slot model per video: schedules remain correct at
        // each video's own slot granularity.
        let hp = plan_heterogeneous(Mbps(105.0), Mbps(1.5), &catalog(), Width::Capped(12)).unwrap();
        for pv in &hp.per_video {
            let units = Width::Capped(12).units(hp.channels_per_video);
            for t0 in [0u64, 1, 5, 11] {
                let tl = crate::client::ClientTimeline::compute(&units, t0);
                assert!(tl.is_jitter_free(), "{:?} phase {t0}", pv.video);
            }
        }
    }

    #[test]
    fn empty_catalog_rejected() {
        assert!(plan_heterogeneous(Mbps(100.0), Mbps(1.5), &[], Width::Unbounded).is_err());
    }
}
