//! Channel Transition Invariant Fast Broadcasting (CTIFB) — FB's segment
//! layout driven by a client that never switches channels mid-reception.
//!
//! CTIFB keeps FB's server side — `K` display-rate channels carrying
//! `N = 2^K − 1` equal slots, channel `i` (1-based) cycling slots
//! `2^{i−1} … 2^i − 1` with period `2^{i−1}` slot times, all phase-aligned
//! — but replaces FB's pick-the-latest-feasible-broadcast client with a
//! *cycle-recording* one: tune every channel at the next slot boundary and
//! record each for exactly one full period. Because the layout is slot
//! aligned and fully packed, every slot then arrives as one whole
//! contiguous reception on one channel, so the client performs exactly
//! `K − 1` channel retirements and zero mid-reception transitions — and
//! its reception windows `[T, T + 2^{i−1}·d)` are the *same* relative to
//! tune-in for **every** arrival phase. That invariance property (the
//! scheme's namesake) is pinned empirically in `sb_sim::cycle_record`,
//! together with a demonstration that FB's latest-feasible client is
//! *not* invariant.
//!
//! Analytics (cross-checked by the closed-form table test below and the
//! phase-exact simulation in `sb_sim::cycle_record`):
//!
//! * `K = ⌊B/(b·M)⌋` channels per video, `N = 2^K − 1` slots of
//!   `d = D/N` minutes;
//! * access latency `= d = D/N` (wait for the next slot boundary);
//! * client I/O bandwidth `= (K + 1)·b` (record all channels + play);
//! * buffer `= 60·b·d·(N − 1)/2` Mbits — channel `i` stops after
//!   `2^{i−1}` slots, so occupancy peaks when the widest channel retires:
//!   `Σ_{i<K} 2^{i−1} = 2^{K−1} − 1 = (N − 1)/2` slots of data, the same
//!   closed form as FB's worst phase but attained at *every* phase.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

use crate::fast::MAX_K;

/// Channel Transition Invariant Fast Broadcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Ctifb;

impl Ctifb {
    /// Channels per video: `K = min(⌊B/(b·M)⌋, MAX_K)`, sharing FB's cap.
    pub fn channels_per_video(&self, cfg: &SystemConfig) -> Result<usize> {
        cfg.validate()?;
        let k = cfg.channels_ratio().floor() as usize;
        if k < 1 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: k,
                required: 1,
            });
        }
        Ok(k.min(MAX_K))
    }

    /// Number of equal slots, `N = 2^K − 1`.
    pub fn slots(&self, cfg: &SystemConfig) -> Result<usize> {
        Ok((1usize << self.channels_per_video(cfg)?) - 1)
    }

    /// One slot's playback time, `d = D/N`.
    pub fn slot(&self, cfg: &SystemConfig) -> Result<Minutes> {
        Ok(Minutes(cfg.video_length.value() / self.slots(cfg)? as f64))
    }
}

impl BroadcastScheme for Ctifb {
    fn name(&self) -> String {
        "CTIFB".to_string()
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let k = self.channels_per_video(cfg)?;
        let n = (1usize << k) - 1;
        let slot = Minutes(cfg.video_length.value() / n as f64);
        // Exact (not worst-case) peak: the cycle-recording client's buffer
        // profile is the same for every arrival phase, peaking at
        // (N − 1)/2 slots of data when channel K retires.
        let peak_slots = (n - 1) as f64 / 2.0;
        Ok(SchemeMetrics {
            access_latency: slot,
            client_io_bandwidth: Mbps(cfg.display_rate.value() * (k + 1) as f64),
            buffer_requirement: cfg.display_rate * Minutes(slot.value() * peak_slots),
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let k = self.channels_per_video(cfg)?;
        let n = (1usize << k) - 1;
        let slot = Minutes(cfg.video_length.value() / n as f64);
        let size = cfg.display_rate * slot;
        let mut segment_sizes = Vec::with_capacity(cfg.num_videos);
        let mut channels = Vec::with_capacity(cfg.num_videos * k);
        for v in 0..cfg.num_videos {
            segment_sizes.push(vec![size; n]);
            for i in 0..k {
                let first = (1usize << i) - 1; // 0-based first slot of channel i
                let count = 1usize << i;
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate: cfg.display_rate,
                    phase: Minutes(0.0),
                    cycle: (0..count)
                        .map(|j| ScheduledSegment {
                            item: BroadcastItem {
                                video: VideoId(v),
                                segment: first + j,
                            },
                            size,
                            on_air: slot,
                        })
                        .collect(),
                });
            }
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FastBroadcasting;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn closed_form_table() {
        // (B, K, N) with the paper defaults M = 10, D = 120, b = 1.5:
        // latency D/N, I/O (K+1)·b, buffer 60·b·d·(N−1)/2.
        for (b, k, n) in [(30.0, 2usize, 3usize), (60.0, 4, 15), (120.0, 8, 255)] {
            let c = cfg(b);
            assert_eq!(Ctifb.channels_per_video(&c).unwrap(), k);
            assert_eq!(Ctifb.slots(&c).unwrap(), n);
            let m = Ctifb.metrics(&c).unwrap();
            let d = 120.0 / n as f64;
            assert!((m.access_latency.value() - d).abs() < 1e-9);
            assert!((m.client_io_bandwidth.value() - 1.5 * (k + 1) as f64).abs() < 1e-9);
            let buffer = 60.0 * 1.5 * d * (n - 1) as f64 / 2.0;
            assert!((m.buffer_requirement.value() - buffer).abs() < 1e-6);
        }
    }

    #[test]
    fn insufficient_bandwidth_rejected() {
        // B = 10 → B/(b·M) = 2/3 < 1 channel per video.
        let c = cfg(10.0);
        assert!(matches!(
            Ctifb.metrics(&c),
            Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            })
        ));
        assert!(Ctifb.plan(&c).is_err());
    }

    #[test]
    fn layout_matches_fb() {
        // Same server side as FB: only the client discipline (and hence
        // the buffer accounting) differs.
        let c = cfg(60.0);
        let ours = Ctifb.plan(&c).unwrap();
        let fb = FastBroadcasting.plan(&c).unwrap();
        ours.validate(c.server_bandwidth).unwrap();
        assert_eq!(ours.segment_sizes, fb.segment_sizes);
        assert_eq!(ours.channels, fb.channels);
        assert_eq!(ours.scheme, "CTIFB");
    }

    #[test]
    fn buffer_equals_fb_worst_case() {
        // CTIFB's every-phase peak is exactly FB's worst-phase closed form.
        let c = cfg(120.0);
        let ours = Ctifb.metrics(&c).unwrap();
        let fb = FastBroadcasting.metrics(&c).unwrap();
        assert!((ours.buffer_requirement.value() - fb.buffer_requirement.value()).abs() < 1e-9);
    }
}
