//! Geometric data fragmentation shared by PB and PPB (§2).
//!
//! Each video is partitioned into `K` sequential fragments of geometrically
//! increasing length: `D₁ = D·(α−1)/(α^K−1)` and `Dᵢ = D₁·α^{i−1}`, so that
//! `Σ Dᵢ = D`. The factor `α > 1` is what makes early fragments small
//! (broadcast often → low latency) and late fragments huge (the root of the
//! pyramids' client-storage problem: `D_{K−1} + D_K` approaches
//! `D·(1 − 1/α²)` ≈ 86 % of the video for `α = e`).

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

use sb_core::error::{Result, SchemeError};

/// A geometric fragmentation of one video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometricFragmentation {
    /// Number of fragments `K` (≥ 1).
    pub k: usize,
    /// The geometric factor `α > 1`.
    pub alpha: f64,
    /// Total video length `D`.
    pub total: Minutes,
}

impl GeometricFragmentation {
    /// Construct, validating `K ≥ 1` and `α > 1`.
    pub fn new(total: Minutes, k: usize, alpha: f64) -> Result<Self> {
        if k == 0 {
            return Err(SchemeError::InvalidConfig {
                what: "geometric fragmentation needs at least one fragment",
            });
        }
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(SchemeError::AlphaTooSmall { alpha });
        }
        if !(total.value().is_finite() && total.value() > 0.0) {
            return Err(SchemeError::InvalidConfig {
                what: "video length must be positive and finite",
            });
        }
        Ok(Self { k, alpha, total })
    }

    /// The first fragment's length `D₁ = D·(α−1)/(α^K−1)`.
    #[must_use]
    pub fn d1(&self) -> Minutes {
        let a = self.alpha;
        Minutes(self.total.value() * (a - 1.0) / (a.powi(self.k as i32) - 1.0))
    }

    /// Length of fragment `i` (0-based): `D₁·α^i`.
    #[must_use]
    pub fn duration(&self, i: usize) -> Minutes {
        assert!(i < self.k, "fragment {i} out of range (K = {})", self.k);
        Minutes(self.d1().value() * self.alpha.powi(i as i32))
    }

    /// Size of fragment `i` in Mbits at display rate `b`.
    #[must_use]
    pub fn size(&self, i: usize, display_rate: Mbps) -> Mbits {
        display_rate * self.duration(i)
    }

    /// Playback start offset of fragment `i` within the video.
    #[must_use]
    pub fn playback_offset(&self, i: usize) -> Minutes {
        let a = self.alpha;
        // Σ_{j<i} D₁·α^j = D₁·(α^i − 1)/(α − 1)
        Minutes(self.d1().value() * (a.powi(i as i32) - 1.0) / (a - 1.0))
    }

    /// Length of the last two fragments combined, `D_{K−1} + D_K` — the
    /// driver of both pyramids' buffer requirements.
    #[must_use]
    pub fn last_two(&self) -> Minutes {
        if self.k == 1 {
            return self.duration(0);
        }
        self.duration(self.k - 2) + self.duration(self.k - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn durations_sum_to_total() {
        let f = GeometricFragmentation::new(Minutes(120.0), 8, 2.5).unwrap();
        let sum: f64 = (0..8).map(|i| f.duration(i).value()).sum();
        assert!((sum - 120.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_between_fragments_is_alpha() {
        let f = GeometricFragmentation::new(Minutes(120.0), 6, 2.0).unwrap();
        for i in 1..6 {
            assert!((f.duration(i) / f.duration(i - 1) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn last_two_approach_1_minus_inv_alpha_sq() {
        // For large K, (D_{K−1}+D_K)/D → 1 − 1/α².
        let a = vod_units::EULER;
        let f = GeometricFragmentation::new(Minutes(120.0), 30, a).unwrap();
        let frac = f.last_two().value() / 120.0;
        assert!((frac - (1.0 - 1.0 / (a * a))).abs() < 1e-6, "{frac}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(GeometricFragmentation::new(Minutes(120.0), 0, 2.0).is_err());
        assert!(GeometricFragmentation::new(Minutes(120.0), 5, 1.0).is_err());
        assert!(GeometricFragmentation::new(Minutes(120.0), 5, 0.5).is_err());
        assert!(GeometricFragmentation::new(Minutes(-1.0), 5, 2.0).is_err());
    }

    #[test]
    fn single_fragment_video() {
        let f = GeometricFragmentation::new(Minutes(120.0), 1, 2.0).unwrap();
        assert!(f.d1().approx_eq(Minutes(120.0), 1e-9));
        assert!(f.last_two().approx_eq(Minutes(120.0), 1e-9));
    }

    proptest! {
        #[test]
        fn offsets_are_cumulative(k in 1usize..=20, alpha in 1.01f64..5.0) {
            let f = GeometricFragmentation::new(Minutes(120.0), k, alpha).unwrap();
            let mut acc = 0.0;
            for i in 0..k {
                prop_assert!((f.playback_offset(i).value() - acc).abs() < 1e-7);
                acc += f.duration(i).value();
            }
            prop_assert!((acc - 120.0).abs() < 1e-7);
        }
    }
}
