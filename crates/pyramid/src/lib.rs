//! # Pyramid-family baselines
//!
//! The schemes Skyscraper Broadcasting is evaluated against in §2 and §5 of
//! the paper, implemented from scratch:
//!
//! * [`pb::PyramidBroadcasting`] — **PB** (Viswanathan & Imieliński):
//!   geometric fragmentation `Dᵢ = D₁·α^{i−1}` over `K` high-rate channels
//!   (`B/K` each), one channel per fragment index, serially multiplexing
//!   all `M` videos. Two parameter rules, **PB:a** and **PB:b**, both
//!   keeping `α` near Euler's `e`.
//! * [`ppb::PermutationPyramid`] — **PPB** (Aggarwal, Wolf & Yu): the same
//!   geometric fragmentation, but each logical channel is time-multiplexed
//!   into `P·M` subchannels of rate `B/(K·M·P)`, each fragment replicated
//!   on `P` phase-shifted subchannels. Variants **PPB:a** and **PPB:b**.
//! * [`staggered::StaggeredBroadcasting`] — the "earlier periodic broadcast
//!   scheme" of §1 (Dan, Sitaram & Shahabuddin): every video broadcast in
//!   full on `K` phase-shifted channels, so latency improves only linearly
//!   in server bandwidth. The reference point that motivates the pyramids.
//!
//! Beyond the paper's own baselines, two contemporaneous equal-slot
//! schemes are included as landscape context (and because their clients
//! exercise reception modes SB deliberately avoids):
//!
//! * [`fast::FastBroadcasting`] — **FB** (Juhn & Tseng): `K` display-rate
//!   channels, `2^K − 1` equal slots, up to `K` concurrent streams at the
//!   client.
//! * [`harmonic::HarmonicBroadcasting`] — **HB** (Juhn & Tseng):
//!   logarithmic server bandwidth via per-slot rates `b/i`, requiring the
//!   client to record every channel *mid-broadcast* — including the
//!   original variant's famous correctness bug and its delayed-playback
//!   fix (demonstrated in `sb_sim::receive_all`).
//!
//! …and two direct successors that close out the scheme zoo:
//!
//! * [`ctifb::Ctifb`] — **CTIFB**: FB's layout under a cycle-recording
//!   client whose reception windows are identical for every arrival phase
//!   (no mid-reception channel transitions; see `sb_sim::cycle_record`).
//! * [`aqhb::AdaptiveQuasiHarmonic`] — **AQHB**: quasi-harmonic slot
//!   rates, jitter-free at every phase, with `(N, m)` picked adaptively
//!   against the budget and cost approaching the optimal `b·(1 + ln N)`.
//!
//! All of these implement [`sb_core::BroadcastScheme`], so they produce
//! both analytic metrics and concrete channel plans that the simulator
//! can execute.
//!
//! ## A note on formula reconstruction
//!
//! The available text of the paper is OCR-degraded around Table 1/Table 2.
//! The parameter rules implemented here were reconstructed from the prose
//! and validated against every concrete number the paper states; the
//! anchors are spelled out in `DESIGN.md` §3 and asserted in this crate's
//! tests (e.g. PB's `≈55.36·b` client disk bandwidth and `0.84·(60bD)`
//! buffer; PPB:b at `B = 320` giving ≈5 min latency and ≈150 MB of disk;
//! PPB infeasible below ≈90 Mb/s).

#![forbid(unsafe_code)]

pub mod aqhb;
pub mod ctifb;
pub mod fast;
pub mod geometry;
pub mod harmonic;
pub mod pb;
pub mod ppb;
pub mod staggered;

pub use aqhb::{AdaptiveQuasiHarmonic, AqhbParams};
pub use ctifb::Ctifb;
pub use fast::FastBroadcasting;
pub use geometry::GeometricFragmentation;
pub use harmonic::{HarmonicBroadcasting, HarmonicVariant};
pub use pb::{PbVariant, PyramidBroadcasting};
pub use ppb::{PermutationPyramid, PpbVariant};
pub use staggered::StaggeredBroadcasting;
