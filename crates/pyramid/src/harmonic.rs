//! Harmonic Broadcasting (HB) — Juhn & Tseng's other 1997 scheme, plus
//! the delayed variant that repairs its famous correctness bug.
//!
//! HB cuts the video into `N` equal slots and broadcasts slot `i`
//! (1-based) on its own channel at rate `b/i`, for a total server cost of
//! only `b·H(N)` (harmonic number — logarithmic!) per video. A client
//! records every channel from the moment it tunes in, catching each
//! channel **mid-broadcast** and keeping the wrap-around pieces.
//!
//! The original analysis claimed playback could begin at the next slot-1
//! broadcast. Pâris, Carter & Long later showed that is wrong: bytes of
//! slot `i` caught mid-cycle can arrive *after* their playback deadline.
//! The simple repair is to delay playback by one extra slot time while
//! still recording from tune-in. Both behaviours are exposed here, and
//! `sb_sim::receive_all` demonstrates the bug and verifies the fix — see
//! the tests there.
//!
//! Analytics:
//!
//! * bandwidth per video `= b·H(N)`; we pick the largest `N ≤ MAX_SLOTS`
//!   affordable from the per-video budget `B/M`;
//! * access latency `= D/N` as originally claimed (the buggy variant) or
//!   `2·D/N` for the delayed fix;
//! * client I/O bandwidth `= b·(H(N) + 1)`;
//! * buffer ≈ 37 % of the video (asserted empirically in
//!   `sb_sim::receive_all`).

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

/// Cap on HB's slot count (the harmonic sum grows so slowly that an
/// uncapped `N` would explode the plan long before exhausting bandwidth).
pub const MAX_SLOTS: usize = 512;

/// The `n`-th harmonic number `H(n) = Σ 1/i`.
#[must_use]
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Whether playback starts at the original (buggy) or the delayed
/// (correct) point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HarmonicVariant {
    /// Juhn & Tseng's original rule: play slot 1 as it is received.
    /// Starves for some arrival phases (demonstrated in
    /// `sb_sim::receive_all` tests).
    Original,
    /// Delay playback by one slot time after reception starts — the
    /// simple fix in the spirit of Pâris, Carter & Long.
    Delayed,
}

/// Harmonic Broadcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarmonicBroadcasting {
    /// Playback-start rule.
    pub variant: HarmonicVariant,
}

impl HarmonicBroadcasting {
    /// The original scheme.
    #[must_use]
    pub fn original() -> Self {
        Self {
            variant: HarmonicVariant::Original,
        }
    }

    /// The delayed (correct) variant.
    #[must_use]
    pub fn delayed() -> Self {
        Self {
            variant: HarmonicVariant::Delayed,
        }
    }

    /// Largest `N ≤ MAX_SLOTS` with `b·H(N) ≤ B/M`.
    pub fn slots(&self, cfg: &SystemConfig) -> Result<usize> {
        cfg.validate()?;
        let budget = cfg.channels_ratio(); // (B/M)/b = affordable H(N)
        if budget < 1.0 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            });
        }
        let mut n = 0usize;
        let mut h = 0.0;
        while n < MAX_SLOTS {
            let next = h + 1.0 / (n + 1) as f64;
            if next > budget {
                break;
            }
            n += 1;
            h = next;
        }
        Ok(n.max(1))
    }

    /// One slot's playback time, `D/N`.
    pub fn slot(&self, cfg: &SystemConfig) -> Result<Minutes> {
        Ok(Minutes(cfg.video_length.value() / self.slots(cfg)? as f64))
    }
}

impl BroadcastScheme for HarmonicBroadcasting {
    fn name(&self) -> String {
        match self.variant {
            HarmonicVariant::Original => "HB".to_string(),
            HarmonicVariant::Delayed => "HB:delayed".to_string(),
        }
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let n = self.slots(cfg)?;
        let slot = self.slot(cfg)?;
        let latency = match self.variant {
            HarmonicVariant::Original => slot,
            HarmonicVariant::Delayed => Minutes(2.0 * slot.value()),
        };
        // The classic HB buffer estimate: ≈ 37 % of the video for large N
        // (Σ max-buffered fractions → 1 − ln 2 ≈ 0.307, plus slot-grain
        // slack; we quote 0.4·size as the requirement, validated
        // empirically by the receive-all client's measurements).
        let video = cfg.video_size();
        Ok(SchemeMetrics {
            access_latency: latency,
            client_io_bandwidth: Mbps(cfg.display_rate.value() * (harmonic(n) + 1.0)),
            buffer_requirement: video * 0.4,
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let n = self.slots(cfg)?;
        let slot = self.slot(cfg)?;
        let size = cfg.display_rate * slot;
        let mut segment_sizes = Vec::with_capacity(cfg.num_videos);
        let mut channels = Vec::with_capacity(cfg.num_videos * n);
        for v in 0..cfg.num_videos {
            segment_sizes.push(vec![size; n]);
            for i in 0..n {
                let rate = Mbps(cfg.display_rate.value() / (i + 1) as f64);
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate,
                    phase: Minutes(0.0),
                    cycle: vec![ScheduledSegment {
                        item: BroadcastItem {
                            video: VideoId(v),
                            segment: i,
                        },
                        size,
                        // on-air time = size / (b/(i+1)) = (i+1) slots.
                        on_air: Minutes(slot.value() * (i + 1) as f64),
                    }],
                });
            }
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn harmonic_numbers() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn logarithmic_bandwidth_buys_many_slots() {
        // B = 60 → per-video budget 6 Mb/s = 4·b → H(N) ≤ 4 → N = 30
        // (H(30) ≈ 3.995, H(31) ≈ 4.027).
        let c = cfg(60.0);
        let n = HarmonicBroadcasting::original().slots(&c).unwrap();
        assert_eq!(n, 30);
        // B = 320 → budget ≈ 21.3·b: the MAX_SLOTS cap binds long before
        // the harmonic sum does (H(512) ≈ 6.8).
        assert_eq!(
            HarmonicBroadcasting::original().slots(&cfg(320.0)).unwrap(),
            MAX_SLOTS
        );
    }

    #[test]
    fn plan_uses_harmonic_rates() {
        let c = cfg(60.0);
        let plan = HarmonicBroadcasting::original().plan(&c).unwrap();
        plan.validate(c.server_bandwidth).unwrap();
        // Channel for slot i runs at b/(i+1) and needs (i+1) slot times.
        let ch2 = &plan.channels[2];
        assert!(ch2.rate.approx_eq(Mbps(0.5), 1e-12));
        assert!((ch2.period().value() - 3.0 * 4.0).abs() < 1e-9); // 3 slots × 4 min
                                                                  // Aggregate per-video cost is b·H(30) ≪ 30·b.
        let per_video: f64 = plan.channels[..30].iter().map(|c| c.rate.value()).sum();
        assert!((per_video - 1.5 * harmonic(30)).abs() < 1e-9);
    }

    #[test]
    fn delayed_variant_doubles_latency() {
        let c = cfg(60.0);
        let orig = HarmonicBroadcasting::original().metrics(&c).unwrap();
        let fixed = HarmonicBroadcasting::delayed().metrics(&c).unwrap();
        assert!((fixed.access_latency.value() - 2.0 * orig.access_latency.value()).abs() < 1e-12);
    }
}
