//! Staggered periodic broadcast — the §1 baseline ("an earlier periodic
//! broadcast scheme was proposed by Dan, Sitaram and Shahabuddin").
//!
//! Each video is broadcast *in its entirety* on `K = ⌊B/(b·M)⌋` channels of
//! rate `b`, with starts staggered `D/K` minutes apart. A client simply
//! waits for the next start and plays the stream live:
//!
//! * access latency `= D/K` — improving only **linearly** with server
//!   bandwidth, the observation that motivated the pyramid schemes;
//! * client I/O bandwidth `= b` (no prefetching at all);
//! * buffer `= 0`.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

/// Staggered (whole-file) periodic broadcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StaggeredBroadcasting;

impl StaggeredBroadcasting {
    /// Channels per video, `K = ⌊B/(b·M)⌋`.
    pub fn channels_per_video(&self, cfg: &SystemConfig) -> Result<usize> {
        cfg.validate()?;
        let k = cfg.channels_ratio().floor() as usize;
        if k < 1 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: k,
                required: 1,
            });
        }
        Ok(k)
    }
}

impl BroadcastScheme for StaggeredBroadcasting {
    fn name(&self) -> String {
        "STAG".to_string()
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let k = self.channels_per_video(cfg)?;
        Ok(SchemeMetrics {
            access_latency: Minutes(cfg.video_length.value() / k as f64),
            client_io_bandwidth: cfg.display_rate,
            buffer_requirement: Mbits(0.0),
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let k = self.channels_per_video(cfg)?;
        let size = cfg.video_size();
        let segment_sizes = vec![vec![size]; cfg.num_videos];
        let stagger = cfg.video_length.value() / k as f64;
        let mut channels = Vec::with_capacity(cfg.num_videos * k);
        for v in 0..cfg.num_videos {
            for j in 0..k {
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate: cfg.display_rate,
                    phase: Minutes(stagger * j as f64),
                    cycle: vec![ScheduledSegment {
                        item: BroadcastItem {
                            video: VideoId(v),
                            segment: 0,
                        },
                        size,
                        on_air: cfg.video_length,
                    }],
                });
            }
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_units::Mbps;

    #[test]
    fn linear_latency() {
        // Doubling bandwidth halves the wait — no better (§1's complaint).
        let m300 = StaggeredBroadcasting
            .metrics(&SystemConfig::paper_defaults(Mbps(300.0)))
            .unwrap();
        let m600 = StaggeredBroadcasting
            .metrics(&SystemConfig::paper_defaults(Mbps(600.0)))
            .unwrap();
        assert!(m300.access_latency.approx_eq(Minutes(6.0), 1e-9)); // 120/20
        assert!(m600.access_latency.approx_eq(Minutes(3.0), 1e-9)); // 120/40
    }

    #[test]
    fn zero_buffer_and_display_rate_io() {
        let m = StaggeredBroadcasting
            .metrics(&SystemConfig::paper_defaults(Mbps(300.0)))
            .unwrap();
        assert_eq!(m.buffer_requirement, Mbits(0.0));
        assert_eq!(m.client_io_bandwidth, Mbps(1.5));
    }

    #[test]
    fn plan_has_staggered_phases() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = StaggeredBroadcasting.plan(&cfg).unwrap();
        plan.validate(cfg.server_bandwidth).unwrap();
        assert_eq!(plan.channels.len(), 10 * 20);
        // Video 0's replicas are 6 minutes apart.
        let item = BroadcastItem {
            video: VideoId(0),
            segment: 0,
        };
        let mut phases: Vec<f64> = plan
            .channels_for(item)
            .iter()
            .map(|c| c.phase.value())
            .collect();
        phases.sort_by(f64::total_cmp);
        assert_eq!(phases.len(), 20);
        for (j, p) in phases.iter().enumerate() {
            assert!((p - 6.0 * j as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn insufficient_bandwidth_rejected() {
        // B = 10 → B/(b·M) = 2/3: K = 0 would make the D/K latency divide
        // by zero. Must error, not panic/poison.
        let c = SystemConfig::paper_defaults(Mbps(10.0));
        assert!(matches!(
            StaggeredBroadcasting.metrics(&c),
            Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            })
        ));
        assert!(StaggeredBroadcasting.plan(&c).is_err());
    }

    #[test]
    fn worst_wait_matches_plan_gap() {
        // The analytic latency equals the largest gap between consecutive
        // starts of the same video in the plan.
        let cfg = SystemConfig::paper_defaults(Mbps(150.0));
        let m = StaggeredBroadcasting.metrics(&cfg).unwrap();
        let plan = StaggeredBroadcasting.plan(&cfg).unwrap();
        let item = BroadcastItem {
            video: VideoId(0),
            segment: 0,
        };
        let mut starts: Vec<f64> = plan
            .channels
            .iter()
            .filter_map(|c| c.next_start_of(item, Minutes(0.0)))
            .map(|m| m.value())
            .collect();
        starts.sort_by(f64::total_cmp);
        let max_gap = starts
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max);
        assert!((max_gap - m.access_latency.value()).abs() < 1e-9);
    }
}
