//! Fast Broadcasting (FB) — Juhn & Tseng's contemporaneous scheme, added
//! as landscape context beyond the paper's own baselines.
//!
//! `K` channels, each at the display rate `b`, carry a video cut into
//! `N = 2^K − 1` equal slots: channel `i` (1-based) cyclically broadcasts
//! slots `2^{i−1} … 2^i − 1`, so its period is `2^{i−1}` slot times. A
//! client tunes at a slot boundary and catches, for each slot, the latest
//! broadcast meeting its deadline — which needs up to `K` concurrent
//! display-rate streams (the scheme's cost) but only
//! `D/(2^K − 1)` worst-case latency from `K·b` of server bandwidth per
//! video (its selling point: the best latency-per-bandwidth of the
//! equal-rate schemes).
//!
//! Analytics (Juhn & Tseng; cross-checked empirically in tests):
//!
//! * `K = ⌊B/(b·M)⌋` channels per video, `N = 2^K − 1` slots;
//! * access latency `= D/N`;
//! * client I/O bandwidth `= (K + 1)·b` (receive all channels + play);
//! * buffer: the client holds about half the video —
//!   `60·b·D·(N−1)/(2N)` Mbits under latest-feasible reception
//!   (attained exactly in the worst arrival phase; asserted empirically).

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

/// Cap on FB's channel count: N = 2^K − 1 slots must stay manageable.
pub const MAX_K: usize = 16;

/// Fast Broadcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FastBroadcasting;

impl FastBroadcasting {
    /// Channels per video: `K = min(⌊B/(b·M)⌋, MAX_K)`.
    pub fn channels_per_video(&self, cfg: &SystemConfig) -> Result<usize> {
        cfg.validate()?;
        let k = cfg.channels_ratio().floor() as usize;
        if k < 1 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: k,
                required: 1,
            });
        }
        Ok(k.min(MAX_K))
    }

    /// Number of equal slots, `N = 2^K − 1`.
    pub fn slots(&self, cfg: &SystemConfig) -> Result<usize> {
        Ok((1usize << self.channels_per_video(cfg)?) - 1)
    }
}

impl BroadcastScheme for FastBroadcasting {
    fn name(&self) -> String {
        "FB".to_string()
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let k = self.channels_per_video(cfg)?;
        let n = (1usize << k) - 1;
        let slot = Minutes(cfg.video_length.value() / n as f64);
        // Peak buffer under latest-feasible reception: slot s of channel i
        // may arrive up to (2^{i−1} − 1) slots early; the worst arrival
        // phase accumulates (N − 1)/2 slots of data (half the video).
        let early_slots = (n - 1) as f64 / 2.0;
        let _ = k;
        Ok(SchemeMetrics {
            access_latency: slot,
            client_io_bandwidth: Mbps(cfg.display_rate.value() * (k + 1) as f64),
            buffer_requirement: cfg.display_rate * Minutes(slot.value() * early_slots),
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let k = self.channels_per_video(cfg)?;
        let n = (1usize << k) - 1;
        let slot = Minutes(cfg.video_length.value() / n as f64);
        let size = cfg.display_rate * slot;
        let mut segment_sizes = Vec::with_capacity(cfg.num_videos);
        let mut channels = Vec::with_capacity(cfg.num_videos * k);
        for v in 0..cfg.num_videos {
            segment_sizes.push(vec![size; n]);
            for i in 0..k {
                let first = (1usize << i) - 1; // 0-based first slot of channel i
                let count = 1usize << i;
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate: cfg.display_rate,
                    phase: Minutes(0.0),
                    cycle: (0..count)
                        .map(|j| ScheduledSegment {
                            item: BroadcastItem {
                                video: VideoId(v),
                                segment: first + j,
                            },
                            size,
                            on_air: slot,
                        })
                        .collect(),
                });
            }
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn exponential_latency_in_channels() {
        // K = 8 at B = 120 → N = 255 slots → latency 0.47 min; compare
        // staggered's 120/8 = 15 min from the same bandwidth.
        let c = cfg(120.0);
        assert_eq!(FastBroadcasting.channels_per_video(&c).unwrap(), 8);
        let m = FastBroadcasting.metrics(&c).unwrap();
        assert!((m.access_latency.value() - 120.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    fn plan_structure() {
        let c = cfg(60.0); // K = 4, N = 15
        let plan = FastBroadcasting.plan(&c).unwrap();
        plan.validate(c.server_bandwidth).unwrap();
        assert_eq!(plan.segment_sizes[0].len(), 15);
        // Channel 3 of video 0 cycles slots 7..=14.
        let ch = &plan.channels[3];
        assert_eq!(ch.cycle.len(), 8);
        assert_eq!(ch.cycle[0].item.segment, 7);
        assert_eq!(ch.cycle[7].item.segment, 14);
        // Every channel at the display rate.
        assert!(plan.channels.iter().all(|c| c.rate == Mbps(1.5)));
    }

    #[test]
    fn k_cap_bounds_plan_size() {
        let c = cfg(6000.0);
        assert_eq!(FastBroadcasting.channels_per_video(&c).unwrap(), MAX_K);
    }

    #[test]
    fn insufficient_bandwidth_rejected() {
        // B = 10 → B/(b·M) = 2/3: K = 0 would make N = 2^0 − 1 = 0 and
        // the D/N latency divide by zero. Must error, not panic/poison.
        let c = cfg(10.0);
        assert!(matches!(
            FastBroadcasting.metrics(&c),
            Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            })
        ));
        assert!(FastBroadcasting.plan(&c).is_err());
    }
}
