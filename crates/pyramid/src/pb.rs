//! Pyramid Broadcasting (PB) — Viswanathan & Imieliński, as described in §2.
//!
//! The server bandwidth is split into `K` logical channels of `B/K` Mb/s.
//! Channel `i` broadcasts the `i`-th fragments of *all* `M` videos, one
//! after another, forever. A client plays fragment `i` while prefetching
//! fragment `i+1` from the next channel ("at the earliest possible time
//! after beginning to play back the current fragment"), so it reads from at
//! most two channels at once — but each at the huge channel rate `B/K`.
//!
//! Parameter rules (Table 2): both variants keep `α = B/(b·M·K)` near
//! Euler's `e` (which maximizes the latency improvement per unit of
//! bandwidth); **PB:a** rounds the channel count up
//! (`K = ⌈B/(e·M·b)⌉`, hence `α ≤ e`), **PB:b** rounds it down
//! (`K = ⌊B/(e·M·b)⌋`, hence `α ≥ e`).
//!
//! Table-1 metrics implemented below:
//!
//! * access latency `= D₁·M·K·b/B` — one full period of channel 1,
//! * client I/O bandwidth `= b + 2·B/K` — playback plus two concurrent
//!   channel-rate receptions (≈ `b(2Me+1) ≈ 55.36·b` at `M = 10`),
//! * buffer `= 60·b·(D_{K−1}·(1−1/M) + D_K)` — play `S_{K−1}` while
//!   receiving both `S_{K−1}` and `S_K`; the `D_{K−1}/M` term is the data
//!   consumed during `S_K`'s reception (`D_K/(αM) = D_{K−1}/M` minutes).
//!   Approaches `0.84·(60·b·D)` for `M = 10`, `α = e` — >1 GB for a
//!   2-hour MPEG-1 video, the paper's headline criticism of PB.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes, EULER};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

use crate::geometry::GeometricFragmentation;

/// The two K-selection rules of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PbVariant {
    /// `K = ⌈B/(e·M·b)⌉` → `α ≤ e`.
    A,
    /// `K = ⌊B/(e·M·b)⌋` → `α ≥ e`.
    B,
}

impl core::fmt::Display for PbVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PbVariant::A => write!(f, "a"),
            PbVariant::B => write!(f, "b"),
        }
    }
}

/// Pyramid Broadcasting with a chosen parameter rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PyramidBroadcasting {
    /// Which Table-2 rule selects `K`.
    pub variant: PbVariant,
}

/// The resolved design parameters of a PB instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbParams {
    /// Number of logical channels (= fragments per video).
    pub k: usize,
    /// The geometric factor `α = B/(b·M·K)`.
    pub alpha: f64,
    /// Rate of each logical channel, `B/K`.
    pub channel_rate: Mbps,
}

impl PyramidBroadcasting {
    /// PB with rule `a`.
    #[must_use]
    pub fn a() -> Self {
        Self {
            variant: PbVariant::A,
        }
    }

    /// PB with rule `b`.
    #[must_use]
    pub fn b() -> Self {
        Self {
            variant: PbVariant::B,
        }
    }

    /// Resolve `(K, α)` for a configuration (Table 2).
    pub fn params(&self, cfg: &SystemConfig) -> Result<PbParams> {
        cfg.validate()?;
        let ratio = cfg.channels_ratio(); // B/(b·M)
        let k = match self.variant {
            PbVariant::A => (ratio / EULER).ceil() as usize,
            PbVariant::B => (ratio / EULER).floor() as usize,
        };
        if k < 2 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: k,
                required: 2,
            });
        }
        let alpha = ratio / k as f64;
        if alpha <= 1.0 {
            return Err(SchemeError::AlphaTooSmall { alpha });
        }
        Ok(PbParams {
            k,
            alpha,
            channel_rate: Mbps(cfg.server_bandwidth.value() / k as f64),
        })
    }

    /// The geometric fragmentation PB induces for `cfg`.
    pub fn fragmentation(&self, cfg: &SystemConfig) -> Result<GeometricFragmentation> {
        let p = self.params(cfg)?;
        GeometricFragmentation::new(cfg.video_length, p.k, p.alpha)
    }
}

impl BroadcastScheme for PyramidBroadcasting {
    fn name(&self) -> String {
        format!("PB:{}", self.variant)
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let p = self.params(cfg)?;
        let frag = GeometricFragmentation::new(cfg.video_length, p.k, p.alpha)?;
        let m = cfg.num_videos as f64;
        let kb_over_b = p.k as f64 * cfg.display_rate.value() * m / cfg.server_bandwidth.value(); // M·K·b/B = 1/α
        let latency = Minutes(frag.d1().value() * kb_over_b);
        let io = Mbps(cfg.display_rate.value() + 2.0 * p.channel_rate.value());
        let buffer_minutes = if p.k >= 2 {
            Minutes(
                frag.duration(p.k - 2).value() * (1.0 - 1.0 / m) + frag.duration(p.k - 1).value(),
            )
        } else {
            Minutes(0.0)
        };
        Ok(SchemeMetrics {
            access_latency: latency,
            client_io_bandwidth: io,
            buffer_requirement: cfg.display_rate * buffer_minutes,
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let p = self.params(cfg)?;
        let frag = GeometricFragmentation::new(cfg.video_length, p.k, p.alpha)?;
        let sizes: Vec<_> = (0..p.k).map(|i| frag.size(i, cfg.display_rate)).collect();
        let segment_sizes = vec![sizes.clone(); cfg.num_videos];
        // Channel i carries segment i of every video, serially.
        let channels = (0..p.k)
            .map(|i| {
                let cycle = (0..cfg.num_videos)
                    .map(|v| ScheduledSegment {
                        item: BroadcastItem {
                            video: VideoId(v),
                            segment: i,
                        },
                        size: sizes[i],
                        on_air: (sizes[i] / p.channel_rate).to_minutes(),
                    })
                    .collect();
                LogicalChannel {
                    id: i,
                    rate: p.channel_rate,
                    phase: Minutes(0.0),
                    cycle,
                }
            })
            .collect();
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn k_selection_straddles_e() {
        // B=600: B/(bMe) ≈ 14.71 → PB:a K=15 (α≈2.67), PB:b K=14 (α≈2.857).
        let pa = PyramidBroadcasting::a().params(&cfg(600.0)).unwrap();
        let pb = PyramidBroadcasting::b().params(&cfg(600.0)).unwrap();
        assert_eq!(pa.k, 15);
        assert_eq!(pb.k, 14);
        assert!(pa.alpha <= EULER + 1e-9);
        assert!(pb.alpha >= EULER - 1e-9);
    }

    #[test]
    fn io_bandwidth_near_55b_for_large_b() {
        // §2: "the disk bandwidth … approaches b(2Me + 1) ≈ 55.36·b".
        let m = PyramidBroadcasting::a().metrics(&cfg(6000.0)).unwrap();
        let ratio = m.client_io_bandwidth.value() / 1.5;
        assert!(
            (ratio - (2.0 * 10.0 * EULER + 1.0)).abs() < 2.0,
            "I/O should approach 55.36·b, got {ratio:.2}·b"
        );
    }

    #[test]
    fn buffer_near_084_of_video_for_large_b() {
        // §2: buffer → 0.84·(60·b·D) Mbits for M = 10, α near e.
        let c = cfg(6000.0);
        let m = PyramidBroadcasting::b().metrics(&c).unwrap();
        let frac = m.buffer_requirement.value() / c.video_size().value();
        assert!((frac - 0.84).abs() < 0.02, "expected ≈0.84, got {frac:.4}");
    }

    #[test]
    fn buffer_exceeds_1gb_in_paper_range() {
        // §5.4: "PB scheme requires each client to have more than 1.0
        // GBytes of disk space, which is more than 75 % of the length of a
        // video", across the studied range.
        for b in [200.0, 320.0, 450.0, 600.0] {
            let c = cfg(b);
            let m = PyramidBroadcasting::a().metrics(&c).unwrap();
            let mbytes = m.buffer_requirement.to_mbytes().value();
            assert!(mbytes > 1000.0, "B={b}: got {mbytes:.0} MB");
            assert!(m.buffer_requirement.value() / c.video_size().value() > 0.75);
        }
    }

    #[test]
    fn excellent_access_latency() {
        // §5.3: PB latency ≈ 0.1 min and below in the studied range.
        let m = PyramidBroadcasting::a().metrics(&cfg(320.0)).unwrap();
        assert!(m.access_latency.value() < 0.1, "{}", m.access_latency);
    }

    #[test]
    fn latency_equals_channel1_period() {
        // Cross-check the Table-1 latency against the plan: one period of
        // channel 1 (M transmissions of S₁ at rate B/K).
        let c = cfg(300.0);
        let scheme = PyramidBroadcasting::a();
        let m = scheme.metrics(&c).unwrap();
        let plan = scheme.plan(&c).unwrap();
        let period = plan.channels[0].period();
        assert!(
            m.access_latency.approx_eq(period, 1e-9),
            "latency {} vs channel-1 period {period}",
            m.access_latency
        );
    }

    #[test]
    fn plan_valid_and_uses_full_bandwidth() {
        let c = cfg(300.0);
        let plan = PyramidBroadcasting::b().plan(&c).unwrap();
        plan.validate(c.server_bandwidth).unwrap();
        assert!(plan.total_bandwidth().approx_eq(c.server_bandwidth, 1e-6));
    }

    #[test]
    fn infeasible_below_threshold() {
        // PB:b needs ⌊B/(e·M·b)⌋ ≥ 2, i.e. B ≥ 2·e·15 ≈ 81.5 Mb/s at the
        // paper's M=10, b=1.5 (cf. §5.1's "PB and PPB do not work if the
        // server bandwidth is less than 90 Mbits/sec").
        assert!(PyramidBroadcasting::b().params(&cfg(80.0)).is_err());
        assert!(PyramidBroadcasting::b().params(&cfg(90.0)).is_ok());
    }

    proptest! {
        #[test]
        fn latency_decreases_with_bandwidth(b1 in 150.0f64..550.0) {
            let b2 = b1 + 50.0;
            let m1 = PyramidBroadcasting::a().metrics(&cfg(b1)).unwrap();
            let m2 = PyramidBroadcasting::a().metrics(&cfg(b2)).unwrap();
            // Latency is near-monotone; allow the sawtooth from K rounding.
            prop_assert!(m2.access_latency.value() < m1.access_latency.value() * 1.5);
        }

        #[test]
        fn alpha_always_near_e(b in 85.0f64..2000.0) {
            for scheme in [PyramidBroadcasting::a(), PyramidBroadcasting::b()] {
                if let Ok(p) = scheme.params(&cfg(b)) {
                    prop_assert!(p.alpha > 1.0 && p.alpha < 2.0 * EULER);
                }
            }
        }
    }
}
