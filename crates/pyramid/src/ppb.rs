//! Permutation-Based Pyramid Broadcasting (PPB) — Aggarwal, Wolf & Yu, as
//! described in §2.
//!
//! PPB keeps PB's geometric fragmentation but divides each of the `K`
//! logical channels into `P·M` *subchannels* of `B/(K·M·P)` Mb/s each. A
//! fragment is replicated on `P` subchannels whose broadcasts are phase
//! shifted by `1/P` of the fragment's on-air time, so a client can catch a
//! fresh broadcast sooner and — because the subchannel rate is far below
//! `B/K` — needs much less client disk bandwidth and space than PB. The
//! price is a longer access latency and (in the storage-optimal variant the
//! paper declines to adopt) mid-broadcast retuning.
//!
//! Parameter rules (Table 2, reconstructed — see `DESIGN.md` §3): with
//! `x = B/(K·M·b)`,
//!
//! * `K` is the largest channel count that keeps the variant feasible,
//!   capped at 7 (§2: "K is determined …, but is limited within the range
//!   2 ≤ K ≤ 7"): `K_a = clamp(⌊B/(2·M·b)⌋, 2, 7)`,
//!   `K_b = clamp(⌊B/(3·M·b)⌋, 2, 7)`;
//! * **PPB:a** `P = max(1, ⌊x − 2⌋)`; **PPB:b** `P = max(2, ⌊x − 2⌋)`;
//! * both set `α = x − P`, which must exceed 1.
//!
//! These rules reproduce every PPB number the paper states: infeasibility
//! below ≈90 Mb/s, PPB:a crossing 0.5 min latency at ≈300 Mb/s, and PPB:b
//! at 320 Mb/s having ≈5 min latency with ≈150 MB of client disk.
//!
//! Table-1 metrics:
//!
//! * access latency `= D₁·M·K·b/B` (with PPB's own `K`, `α` — much larger
//!   than PB's because `K ≤ 7` caps the exponential gain),
//! * client I/O bandwidth `= b + B/(K·M·P)` (one subchannel-rate reception
//!   plus playback),
//! * buffer `= 60·b·(D_{K−1}+D_K)·(M·K·b/B)` Mbits.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

use crate::geometry::GeometricFragmentation;

/// Hard cap on PPB's channel count (§2: `2 ≤ K ≤ 7`).
pub const MAX_K: usize = 7;

/// The two P-selection rules of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PpbVariant {
    /// `P = max(1, ⌊x − 2⌋)` — latency-leaning.
    A,
    /// `P = max(2, ⌊x − 2⌋)` — storage-leaning (more replicas, slower
    /// subchannels, smaller buffers, longer waits).
    B,
}

impl PpbVariant {
    fn min_p(self) -> usize {
        match self {
            PpbVariant::A => 1,
            PpbVariant::B => 2,
        }
    }
}

impl core::fmt::Display for PpbVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PpbVariant::A => write!(f, "a"),
            PpbVariant::B => write!(f, "b"),
        }
    }
}

/// Permutation-Based Pyramid Broadcasting with a chosen parameter rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermutationPyramid {
    /// Which Table-2 rule selects `P`.
    pub variant: PpbVariant,
}

/// The resolved design parameters of a PPB instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpbParams {
    /// Number of logical channels (= fragments per video), `2 ≤ K ≤ 7`.
    pub k: usize,
    /// Replication degree per fragment.
    pub p: usize,
    /// The geometric factor `α = B/(K·M·b) − P`.
    pub alpha: f64,
    /// Rate of each subchannel, `B/(K·M·P)`.
    pub subchannel_rate: Mbps,
}

impl PermutationPyramid {
    /// PPB with rule `a`.
    #[must_use]
    pub fn a() -> Self {
        Self {
            variant: PpbVariant::A,
        }
    }

    /// PPB with rule `b`.
    #[must_use]
    pub fn b() -> Self {
        Self {
            variant: PpbVariant::B,
        }
    }

    /// Resolve `(K, P, α)` for a configuration (Table 2).
    pub fn params(&self, cfg: &SystemConfig) -> Result<PpbParams> {
        cfg.validate()?;
        let ratio = cfg.channels_ratio(); // B/(b·M)
        let min_p = self.variant.min_p();
        // Feasibility needs α = x − P > 1 with P ≥ min_p, i.e.
        // x = ratio/K > min_p + 1 — the largest such K, capped at 7.
        let k = ((ratio / (min_p as f64 + 1.0)).floor() as usize).min(MAX_K);
        if k < 2 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: k,
                required: 2,
            });
        }
        let x = ratio / k as f64;
        // `x` must be a finite budget above `min_p + 1` before it is
        // floored into `P`: the old cast chain
        // `((x - 2.0).floor() as i64).max(min_p as i64) as usize`
        // saturated NaN to 0 and ±inf to i64::MAX, silently producing a
        // nonsense `P` instead of a typed error at extreme configs.
        if !x.is_finite() {
            return Err(SchemeError::InvalidConfig {
                what: "per-channel budget B/(b·M·K) is not finite",
            });
        }
        let p = if x - 2.0 <= min_p as f64 {
            // Clamp region: the floor would fall below the variant's
            // minimum replication (including every x < 2, where the old
            // floor went negative before being clamped back up).
            min_p
        } else {
            (x - 2.0).floor() as usize
        };
        let alpha = x - p as f64;
        if alpha <= 1.0 {
            return Err(SchemeError::AlphaTooSmall { alpha });
        }
        Ok(PpbParams {
            k,
            p,
            alpha,
            subchannel_rate: Mbps(cfg.server_bandwidth.value() / (k * cfg.num_videos * p) as f64),
        })
    }

    /// The geometric fragmentation PPB induces for `cfg`.
    pub fn fragmentation(&self, cfg: &SystemConfig) -> Result<GeometricFragmentation> {
        let p = self.params(cfg)?;
        GeometricFragmentation::new(cfg.video_length, p.k, p.alpha)
    }
}

impl BroadcastScheme for PermutationPyramid {
    fn name(&self) -> String {
        format!("PPB:{}", self.variant)
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let p = self.params(cfg)?;
        let frag = GeometricFragmentation::new(cfg.video_length, p.k, p.alpha)?;
        let mkb_over_b =
            (p.k * cfg.num_videos) as f64 * cfg.display_rate.value() / cfg.server_bandwidth.value();
        Ok(SchemeMetrics {
            access_latency: Minutes(frag.d1().value() * mkb_over_b),
            client_io_bandwidth: Mbps(cfg.display_rate.value() + p.subchannel_rate.value()),
            buffer_requirement: cfg.display_rate * Minutes(frag.last_two().value() * mkb_over_b),
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let pp = self.params(cfg)?;
        let frag = GeometricFragmentation::new(cfg.video_length, pp.k, pp.alpha)?;
        let sizes: Vec<_> = (0..pp.k).map(|i| frag.size(i, cfg.display_rate)).collect();
        let segment_sizes = vec![sizes.clone(); cfg.num_videos];
        let mut channels = Vec::with_capacity(pp.k * cfg.num_videos * pp.p);
        for (i, &seg_size) in sizes.iter().enumerate() {
            let on_air = (seg_size / pp.subchannel_rate).to_minutes();
            for v in 0..cfg.num_videos {
                for replica in 0..pp.p {
                    channels.push(LogicalChannel {
                        id: channels.len(),
                        rate: pp.subchannel_rate,
                        // Replicas phase-shifted by 1/P of the on-air time.
                        phase: Minutes(on_air.value() * replica as f64 / pp.p as f64),
                        cycle: vec![ScheduledSegment {
                            item: BroadcastItem {
                                video: VideoId(v),
                                segment: i,
                            },
                            size: seg_size,
                            on_air,
                        }],
                    });
                }
            }
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn paper_anchor_ppb_b_at_320() {
        // §5.4: "when B is about 320 Mbits/sec, PPB:b requires only
        // 150 MBytes or so of disk space. Unfortunately, its access latency
        // in this case is as high as five minutes."
        let m = PermutationPyramid::b().metrics(&cfg(320.0)).unwrap();
        let lat = m.access_latency.value();
        let buf = m.buffer_requirement.to_mbytes().value();
        assert!((lat - 5.0).abs() < 0.5, "expected ≈5 min, got {lat:.2}");
        assert!((buf - 150.0).abs() < 20.0, "expected ≈150 MB, got {buf:.0}");
    }

    #[test]
    fn paper_anchor_ppb_a_latency_at_300() {
        // §5.3: "if the access latency is required to be less than 0.5
        // minutes, then we must have a network-I/O bandwidth of at least
        // 300 Mbits/sec in order to use PPB."
        let at_300 = PermutationPyramid::a().metrics(&cfg(300.0)).unwrap();
        assert!(
            at_300.access_latency.value() <= 0.55,
            "PPB:a at 300 should be ≈0.5 min, got {}",
            at_300.access_latency
        );
        let at_260 = PermutationPyramid::a().metrics(&cfg(260.0)).unwrap();
        assert!(
            at_260.access_latency.value() > 0.5,
            "below 300 the 0.5-min target must be missed, got {}",
            at_260.access_latency
        );
    }

    #[test]
    fn infeasible_below_90() {
        // §5.1: "PB and PPB do not work if the server bandwidth is less
        // than 90 Mbits/sec (i.e., α becomes less than one)". For PPB:b the
        // threshold is exactly B = 90 at M=10, b=1.5.
        assert!(PermutationPyramid::b().params(&cfg(89.0)).is_err());
        assert!(PermutationPyramid::b().params(&cfg(95.0)).is_ok());
        assert!(PermutationPyramid::a().params(&cfg(55.0)).is_err());
    }

    #[test]
    fn clamp_boundary_resolves_to_min_p_not_wrapped() {
        // The regression band for the old cast chain: x = B/(b·M·K) lands
        // in (min_p + 1, min_p + 2), where `(x − 2).floor()` falls below
        // min_p (for PPB:b it is 1 < 2). The resolved P must be exactly
        // min_p with α = x − min_p, not a saturated/wrapped value.
        let c = cfg(105.0); // ratio = 7 → PPB:b K = 2, x = 3.5
        let p = PermutationPyramid::b().params(&c).unwrap();
        assert_eq!(p.k, 2);
        assert_eq!(p.p, 2);
        assert!((p.alpha - 1.5).abs() < 1e-9);
    }

    #[test]
    fn boundary_budget_errors_instead_of_degenerating() {
        // x = 2 exactly for PPB:a (B = 60 → ratio 4 → K = 2, x = 2):
        // P clamps to min_p = 1 and α = 1, which must surface as
        // AlphaTooSmall — never a panic or a wrapped parameter.
        assert!(matches!(
            PermutationPyramid::a().params(&cfg(60.0)),
            Err(SchemeError::AlphaTooSmall { .. })
        ));
        // A non-finite budget is rejected before any cast can saturate.
        let mut c = cfg(320.0);
        c.server_bandwidth = Mbps(f64::NAN);
        assert!(PermutationPyramid::a().params(&c).is_err());
        c.server_bandwidth = Mbps(f64::INFINITY);
        assert!(PermutationPyramid::a().params(&c).is_err());
    }

    #[test]
    fn k_is_capped_at_7() {
        for b in [320.0, 450.0, 600.0, 2000.0] {
            for scheme in [PermutationPyramid::a(), PermutationPyramid::b()] {
                let p = scheme.params(&cfg(b)).unwrap();
                assert!(p.k <= MAX_K, "B={b}: K={}", p.k);
                assert!(p.alpha > 1.0);
            }
        }
        // …which is why PPB improves only linearly at large B (§2).
        assert_eq!(PermutationPyramid::a().params(&cfg(600.0)).unwrap().k, 7);
    }

    #[test]
    fn variant_b_has_more_replicas_smaller_buffer() {
        let c = cfg(320.0);
        let pa = PermutationPyramid::a().params(&c).unwrap();
        let pb = PermutationPyramid::b().params(&c).unwrap();
        assert!(pb.p >= pa.p.max(2));
        let ma = PermutationPyramid::a().metrics(&c).unwrap();
        let mb = PermutationPyramid::b().metrics(&c).unwrap();
        assert!(mb.buffer_requirement < ma.buffer_requirement);
        assert!(mb.access_latency > ma.access_latency);
    }

    #[test]
    fn io_bandwidth_far_below_pb() {
        // §2/§5.2: PPB's client disk bandwidth is close to the display rate
        // (b + subchannel rate), nowhere near PB's ~50·b.
        let c = cfg(600.0);
        let ppb = PermutationPyramid::b().metrics(&c).unwrap();
        let pb = crate::pb::PyramidBroadcasting::a().metrics(&c).unwrap();
        assert!(ppb.client_io_bandwidth.value() < 6.0 * 1.5);
        assert!(pb.client_io_bandwidth.value() > 25.0 * 1.5);
    }

    #[test]
    fn plan_valid_with_phase_shifted_replicas() {
        let c = cfg(320.0);
        let scheme = PermutationPyramid::b();
        let p = scheme.params(&c).unwrap();
        let plan = scheme.plan(&c).unwrap();
        plan.validate(c.server_bandwidth).unwrap();
        assert_eq!(plan.channels.len(), p.k * 10 * p.p);
        // Each fragment appears on exactly P subchannels with distinct phases.
        let item = BroadcastItem {
            video: VideoId(3),
            segment: 1,
        };
        let carriers = plan.channels_for(item);
        assert_eq!(carriers.len(), p.p);
        let mut phases: Vec<f64> = carriers.iter().map(|c| c.phase.value()).collect();
        phases.sort_by(f64::total_cmp);
        phases.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert_eq!(phases.len(), p.p);
    }

    proptest! {
        #[test]
        fn feasible_parameters_are_consistent(b in 95.0f64..2000.0) {
            for scheme in [PermutationPyramid::a(), PermutationPyramid::b()] {
                if let Ok(p) = scheme.params(&cfg(b)) {
                    prop_assert!((2..=MAX_K).contains(&p.k));
                    prop_assert!(p.p >= scheme.variant.min_p());
                    prop_assert!(p.alpha > 1.0);
                    // x = α + P must reconstruct B/(K·M·b)
                    let x = cfg(b).channels_ratio() / p.k as f64;
                    prop_assert!((p.alpha + p.p as f64 - x).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn subchannel_rate_exceeds_display_rate(b in 95.0f64..2000.0) {
            // α > 1 ⇒ x/P > 1 + 1/P ⇒ subchannel rate > b: contiguous
            // reception keeps ahead of playback, so tune-at-start works.
            for scheme in [PermutationPyramid::a(), PermutationPyramid::b()] {
                if let Ok(p) = scheme.params(&cfg(b)) {
                    prop_assert!(p.subchannel_rate.value() > 1.5);
                }
            }
        }
    }
}
