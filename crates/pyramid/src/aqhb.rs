//! Adaptive Quasi-Harmonic Broadcasting (AQHB) — harmonic-family slot
//! rates that are jitter-free by construction, with the slot count and
//! subslot granularity chosen adaptively against the bandwidth budget.
//!
//! Plain HB's rate-`b/i` channels are *infeasible* for some arrival
//! phases (the Pâris–Carter–Long bug; see [`crate::harmonic`]). The
//! quasi-harmonic family repairs this on the server side: with subslot
//! granularity `m`, channel 1 streams at the display rate `b` and channel
//! `i ≥ 2` at
//!
//! ```text
//! r_i = b·(H(i·m − 1) − H((i−1)·m − 1))        H(n) = Σ_{j≤n} 1/j
//! ```
//!
//! so each channel runs *faster* than HB's `b/i` (a sum of `m` terms each
//! `> 1/(i·m)`), its period is strictly under `i` slot times, and a
//! receive-everything client that delays playback by one slot is
//! jitter-free at **every** arrival phase (proved per-byte in
//! `sb_sim::receive_all` tests). The per-video cost telescopes to
//!
//! ```text
//! B(N, m) = b·(1 + H(N·m − 1) − H(m − 1))
//! ```
//!
//! which at `m = 1` is the cautious-harmonic `b·(1 + H(N − 1))`, decreases
//! strictly as `m` grows, and approaches (but never reaches) the optimal
//! jitter-free bound `b·(1 + ln N)`. The *adaptive* part picks, for a
//! budget of `c = B/(b·M)` display-rate units per video, the largest
//! affordable `N ≤ MAX_SLOTS` at the finest granularity and then the
//! coarsest `m ≤ MAX_SUBSLOTS` that still fits — maximum slots first
//! (latency), minimum subslots second (scheduler granularity).
//!
//! Analytics (pinned by the closed-form table test below and exactly, per
//! phase, in `sb_sim::receive_all`):
//!
//! * access latency `= 2·D/N` (wait for a channel-1 start, plus the one
//!   slot of playback delay);
//! * client I/O bandwidth `= b·(2 + H(N·m − 1) − H(m − 1))` (record every
//!   channel + play);
//! * buffer: the profile `Σ_i r_i·min(t, P_i) − b·(t − d)⁺` is the same
//!   for every arrival phase; its exact peak over the channel-retirement
//!   breakpoints `P_i` is the requirement ([`AdaptiveQuasiHarmonic::peak_buffer`]).

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::{BroadcastItem, ChannelPlan, LogicalChannel, ScheduledSegment, VideoId};
use sb_core::scheme::{BroadcastScheme, SchemeMetrics};

use crate::harmonic::harmonic;

/// Cap on AQHB's slot count, matching HB's.
pub const MAX_SLOTS: usize = 512;

/// Cap on the subslot granularity `m`.
pub const MAX_SUBSLOTS: usize = 16;

/// Adaptive Quasi-Harmonic Broadcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdaptiveQuasiHarmonic;

/// The adaptive design point: `N` slots at subslot granularity `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AqhbParams {
    /// Number of equal slots.
    pub n: usize,
    /// Subslot granularity.
    pub m: usize,
}

/// Channel `i` (0-based) rate in display-rate units: channel 0 streams at
/// `b`, channel `i ≥ 1` at `H((i+1)·m − 1) − H(i·m − 1)` times `b`.
#[must_use]
pub fn rate_units(i: usize, m: usize) -> f64 {
    if i == 0 {
        1.0
    } else {
        harmonic((i + 1) * m - 1) - harmonic(i * m - 1)
    }
}

/// Per-video bandwidth in display-rate units,
/// `B(N, m)/b = 1 + H(N·m − 1) − H(m − 1)` (the telescoped rate sum).
#[must_use]
pub fn bandwidth_units(n: usize, m: usize) -> f64 {
    1.0 + harmonic(n * m - 1) - harmonic(m - 1)
}

impl AdaptiveQuasiHarmonic {
    /// Resolve the adaptive `(N, m)` for a configuration: the largest
    /// `N ≤ MAX_SLOTS` affordable at `m = MAX_SUBSLOTS`, then the smallest
    /// `m` that still fits the budget at that `N`.
    pub fn params(&self, cfg: &SystemConfig) -> Result<AqhbParams> {
        cfg.validate()?;
        let c = cfg.channels_ratio(); // per-video budget in units of b
        if c < 1.0 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            });
        }
        let mut n = 1usize;
        while n < MAX_SLOTS && bandwidth_units(n + 1, MAX_SUBSLOTS) <= c {
            n += 1;
        }
        let m = (1..=MAX_SUBSLOTS)
            .find(|&m| bandwidth_units(n, m) <= c)
            .expect("bandwidth_units(n, MAX_SUBSLOTS) <= c by choice of n");
        Ok(AqhbParams { n, m })
    }

    /// Number of equal slots at the adaptive design point.
    pub fn slots(&self, cfg: &SystemConfig) -> Result<usize> {
        Ok(self.params(cfg)?.n)
    }

    /// One slot's playback time, `d = D/N`.
    pub fn slot(&self, cfg: &SystemConfig) -> Result<Minutes> {
        Ok(Minutes(cfg.video_length.value() / self.slots(cfg)? as f64))
    }

    /// Exact peak of the (phase-invariant) buffer profile: with `u_i`
    /// the channel rates in display-rate units and `P_i = d/u_i` the
    /// channel periods, occupancy at `t` minutes after tune-in is
    /// `b·(Σ_i u_i·min(t, P_i) − (t − d)⁺)` — piecewise linear, so the
    /// peak sits at a retirement breakpoint.
    pub fn peak_buffer(&self, cfg: &SystemConfig) -> Result<Mbits> {
        let p = self.params(cfg)?;
        let d = cfg.video_length.value() / p.n as f64;
        let units: Vec<f64> = (0..p.n).map(|i| rate_units(i, p.m)).collect();
        let periods: Vec<f64> = units.iter().map(|&u| d / u).collect();
        let mut breakpoints: Vec<f64> = periods.clone();
        breakpoints.push(d);
        let total_play = p.n as f64 * d;
        let peak = breakpoints
            .iter()
            .map(|&t| {
                let received: f64 = units
                    .iter()
                    .zip(&periods)
                    .map(|(&u, &pi)| u * t.min(pi))
                    .sum();
                let consumed = (t - d).clamp(0.0, total_play);
                received - consumed
            })
            .fold(0.0f64, f64::max);
        Ok(cfg.display_rate * Minutes(peak))
    }
}

impl BroadcastScheme for AdaptiveQuasiHarmonic {
    fn name(&self) -> String {
        "AQHB".to_string()
    }

    fn metrics(&self, cfg: &SystemConfig) -> Result<SchemeMetrics> {
        let p = self.params(cfg)?;
        let slot = Minutes(cfg.video_length.value() / p.n as f64);
        Ok(SchemeMetrics {
            access_latency: Minutes(2.0 * slot.value()),
            client_io_bandwidth: Mbps(cfg.display_rate.value() * (1.0 + bandwidth_units(p.n, p.m))),
            buffer_requirement: self.peak_buffer(cfg)?,
        })
    }

    fn plan(&self, cfg: &SystemConfig) -> Result<ChannelPlan> {
        let p = self.params(cfg)?;
        let slot = Minutes(cfg.video_length.value() / p.n as f64);
        let size = cfg.display_rate * slot;
        let mut segment_sizes = Vec::with_capacity(cfg.num_videos);
        let mut channels = Vec::with_capacity(cfg.num_videos * p.n);
        for v in 0..cfg.num_videos {
            segment_sizes.push(vec![size; p.n]);
            for i in 0..p.n {
                let u = rate_units(i, p.m);
                channels.push(LogicalChannel {
                    id: channels.len(),
                    rate: Mbps(cfg.display_rate.value() * u),
                    phase: Minutes(0.0),
                    cycle: vec![ScheduledSegment {
                        item: BroadcastItem {
                            video: VideoId(v),
                            segment: i,
                        },
                        size,
                        // on-air time = size / (u·b) = d/u minutes.
                        on_air: Minutes(slot.value() / u),
                    }],
                });
            }
        }
        Ok(ChannelPlan {
            scheme: self.name(),
            segment_sizes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn m_equals_one_is_cautious_harmonic() {
        // At m = 1 the rates collapse to CHB's b, b, b/2, b/3, … and the
        // cost to b·(1 + H(N−1)).
        assert!((rate_units(0, 1) - 1.0).abs() < 1e-12);
        assert!((rate_units(1, 1) - 1.0).abs() < 1e-12);
        for i in 2..40 {
            assert!((rate_units(i, 1) - 1.0 / i as f64).abs() < 1e-12, "i={i}");
        }
        for n in [2usize, 10, 100] {
            assert!((bandwidth_units(n, 1) - (1.0 + harmonic(n - 1))).abs() < 1e-12);
        }
    }

    #[test]
    fn bandwidth_decreases_in_m_toward_the_optimal_bound() {
        for n in [4usize, 30, 200] {
            let bound = 1.0 + (n as f64).ln();
            let mut prev = f64::INFINITY;
            for m in 1..=MAX_SUBSLOTS {
                let b = bandwidth_units(n, m);
                assert!(b < prev, "B(N,m) must strictly decrease in m");
                assert!(b > bound, "B(N,m) must stay above b(1 + ln N)");
                prev = b;
            }
            // At the finest granularity the gap to optimal is small.
            assert!(bandwidth_units(n, MAX_SUBSLOTS) - bound < 0.07, "n={n}");
        }
    }

    #[test]
    fn channels_outpace_harmonic_rates() {
        // Feasibility hinges on r_i > b/i for every i ≥ 1 (period under
        // i slot times), strict at every granularity.
        for m in 1..=MAX_SUBSLOTS {
            for i in 1..64 {
                assert!(
                    rate_units(i, m) > 1.0 / (i + 1) as f64,
                    "m={m} i={i}: {} <= 1/{}",
                    rate_units(i, m),
                    i + 1
                );
            }
        }
    }

    #[test]
    fn insufficient_bandwidth_rejected() {
        // B = 10 → c = 2/3 < 1: not even one display-rate channel.
        let c = cfg(10.0);
        assert!(matches!(
            AdaptiveQuasiHarmonic.metrics(&c),
            Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            })
        ));
        assert!(AdaptiveQuasiHarmonic.plan(&c).is_err());
    }

    #[test]
    fn adaptive_params_maximize_slots_then_coarsen() {
        let c = cfg(60.0); // c = 4 display-rate units per video
        let p = AdaptiveQuasiHarmonic.params(&c).unwrap();
        // N is the largest affordable at m = MAX_SUBSLOTS…
        assert!(bandwidth_units(p.n, MAX_SUBSLOTS) <= 4.0);
        assert!(bandwidth_units(p.n + 1, MAX_SUBSLOTS) > 4.0);
        // …and m is the smallest that fits at that N.
        assert!(bandwidth_units(p.n, p.m) <= 4.0);
        if p.m > 1 {
            assert!(bandwidth_units(p.n, p.m - 1) > 4.0);
        }
        // The budget is respected by the concrete plan too.
        let plan = AdaptiveQuasiHarmonic.plan(&c).unwrap();
        plan.validate(c.server_bandwidth).unwrap();
    }

    #[test]
    fn closed_form_table() {
        // Pinned design points and metrics at the paper defaults.
        let c = cfg(60.0); // c = 4
        let p = AdaptiveQuasiHarmonic.params(&c).unwrap();
        let m = AdaptiveQuasiHarmonic.metrics(&c).unwrap();
        let d = 120.0 / p.n as f64;
        assert!((m.access_latency.value() - 2.0 * d).abs() < 1e-9);
        let io = 1.5 * (1.0 + bandwidth_units(p.n, p.m));
        assert!((m.client_io_bandwidth.value() - io).abs() < 1e-9);
        // AQHB buys far more slots than staggered (K = 4 → 4 "slots") from
        // the same budget, at bounded rates unlike HB's buggy claim.
        assert!(p.n > 10, "N = {}", p.n);
        // Buffer stays below the HB-style fraction of the video.
        assert!(m.buffer_requirement.value() < c.video_size().value() * 0.45);
        assert!(m.buffer_requirement.value() > 0.0);
    }
}
