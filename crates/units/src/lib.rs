//! Physical-quantity newtypes shared by the Skyscraper Broadcasting workspace.
//!
//! The SIGCOMM '97 paper mixes three unit systems freely — video length in
//! *minutes*, bandwidth in *Mbits/sec*, and buffer sizes in *Mbits* or
//! *MBytes* — and every one of its formulas carries a literal `60` that
//! converts between minutes of playback and megabits of data
//! (`60 · b · D` Mbits for `D` minutes at `b` Mb/s). Encoding these as
//! distinct types eliminates the entire class of "forgot the 60" and
//! "bits vs. bytes" bugs that plague reimplementations.
//!
//! Two families of types live here:
//!
//! * **Continuous quantities** ([`Mbits`], [`MBytes`], [`Mbps`],
//!   [`Minutes`], [`Seconds`]) — thin `f64` wrappers with only the
//!   physically meaningful arithmetic implemented. `Mbps * Minutes` yields
//!   [`Mbits`] with the 60× factor applied in exactly one place.
//! * **Discrete simulation time** ([`Ticks`], [`TickDuration`]) — exact
//!   `u64` instants and spans for the discrete-event engine, plus
//!   [`TickScale`] describing the real-time length of one tick.
//!
//! All continuous types are plain `Copy` data; none allocates.

#![forbid(unsafe_code)]

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Seconds per minute; the single place the paper's ubiquitous `60` lives.
pub const SECONDS_PER_MINUTE: f64 = 60.0;

/// Euler's constant, used by Pyramid Broadcasting's channel-count rule
/// (`K ≈ B/(e·M·b)` keeps the geometric factor α near e).
pub const EULER: f64 = core::f64::consts::E;

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Construct from a raw `f64` in this type's native unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw value in this type's native unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// `true` when the value is finite (neither NaN nor ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamp the value to be at least zero.
            #[inline]
            pub fn clamp_non_negative(self) -> Self {
                Self(self.0.max(0.0))
            }

            /// `true` if `self` and `other` differ by at most `tol` in the
            /// native unit. Used by analytic-vs-simulated cross checks.
            #[inline]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                self.0.partial_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// A quantity of data in megabits (the paper's native data unit).
    Mbits,
    "Mbit"
);

quantity!(
    /// A quantity of data in megabytes (used by the paper's Figures 6 and 8).
    MBytes,
    "MByte"
);

quantity!(
    /// A data rate in megabits per second (the paper's `B` and `b`).
    Mbps,
    "Mb/s"
);

quantity!(
    /// A duration in minutes (the paper's `D`, `Dᵢ`, and all latencies).
    Minutes,
    "min"
);

quantity!(
    /// A duration in seconds.
    Seconds,
    "s"
);

impl Mbits {
    /// Convert to megabytes (÷ 8).
    #[inline]
    pub fn to_mbytes(self) -> MBytes {
        MBytes(self.0 / 8.0)
    }
}

impl MBytes {
    /// Convert to megabits (× 8).
    #[inline]
    pub fn to_mbits(self) -> Mbits {
        Mbits(self.0 * 8.0)
    }
}

impl Minutes {
    /// Convert to seconds.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 * SECONDS_PER_MINUTE)
    }
}

impl Seconds {
    /// Convert to minutes.
    #[inline]
    pub fn to_minutes(self) -> Minutes {
        Minutes(self.0 / SECONDS_PER_MINUTE)
    }
}

impl Mbps {
    /// A rate in megabytes per second (used by Figure 6's y-axis).
    #[inline]
    pub fn to_mbytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }
}

/// `rate × minutes = data`, applying the paper's `60` exactly once.
impl Mul<Minutes> for Mbps {
    type Output = Mbits;
    #[inline]
    fn mul(self, rhs: Minutes) -> Mbits {
        Mbits(self.0 * rhs.0 * SECONDS_PER_MINUTE)
    }
}

/// `minutes × rate = data` (commutative form).
impl Mul<Mbps> for Minutes {
    type Output = Mbits;
    #[inline]
    fn mul(self, rhs: Mbps) -> Mbits {
        rhs * self
    }
}

/// `rate × seconds = data`.
impl Mul<Seconds> for Mbps {
    type Output = Mbits;
    #[inline]
    fn mul(self, rhs: Seconds) -> Mbits {
        Mbits(self.0 * rhs.0)
    }
}

/// `seconds × rate = data`.
impl Mul<Mbps> for Seconds {
    type Output = Mbits;
    #[inline]
    fn mul(self, rhs: Mbps) -> Mbits {
        rhs * self
    }
}

/// `data ÷ rate = transmission time`.
impl Div<Mbps> for Mbits {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Mbps) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

// ---------------------------------------------------------------------------
// Discrete simulation time
// ---------------------------------------------------------------------------

/// An absolute instant of discrete simulation time, in ticks since the
/// simulation epoch.
///
/// The discrete-event engine runs on exact integer time: events can be
/// compared, ordered, and deduplicated with no floating-point fuzz. How
/// long one tick is in simulated real time is described by [`TickScale`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ticks(pub u64);

/// A span of discrete simulation time, in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TickDuration(pub u64);

impl Ticks {
    /// The simulation epoch.
    pub const ZERO: Self = Self(0);

    /// Ticks elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; the engine never asks for
    /// a negative elapsed time and a wrap here would silently corrupt
    /// buffer accounting.
    #[inline]
    pub fn since(self, earlier: Ticks) -> TickDuration {
        TickDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("Ticks::since called with a later instant"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: Ticks) -> TickDuration {
        TickDuration(self.0.saturating_sub(earlier.0))
    }
}

impl TickDuration {
    /// The empty span.
    pub const ZERO: Self = Self(0);

    /// `true` when the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<TickDuration> for Ticks {
    type Output = Ticks;
    #[inline]
    fn add(self, rhs: TickDuration) -> Ticks {
        Ticks(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<TickDuration> for Ticks {
    #[inline]
    fn add_assign(&mut self, rhs: TickDuration) {
        *self = *self + rhs;
    }
}

impl Add for TickDuration {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.checked_add(rhs.0).expect("tick duration overflow"))
    }
}

impl AddAssign for TickDuration {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for TickDuration {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0.checked_mul(rhs).expect("tick duration overflow"))
    }
}

impl Sum for TickDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TickDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

/// The real-time meaning of one simulation tick.
///
/// The byte-level simulator picks a scale fine enough that segment
/// boundaries of the irrational-α pyramid schemes round to ticks with
/// negligible error (default: 100 ticks per simulated second, i.e. one
/// tick = 10 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickScale {
    /// Number of ticks per simulated second. Must be non-zero.
    pub ticks_per_second: u64,
}

impl Default for TickScale {
    fn default() -> Self {
        Self {
            ticks_per_second: 100,
        }
    }
}

impl TickScale {
    /// A scale with the given resolution.
    ///
    /// # Panics
    /// Panics if `ticks_per_second` is zero.
    pub fn new(ticks_per_second: u64) -> Self {
        assert!(ticks_per_second > 0, "tick scale must be non-zero");
        Self { ticks_per_second }
    }

    /// Convert a continuous duration to the nearest whole number of ticks.
    pub fn duration_from_seconds(self, seconds: Seconds) -> TickDuration {
        assert!(
            seconds.value() >= 0.0 && seconds.is_finite(),
            "durations must be finite and non-negative, got {seconds}"
        );
        TickDuration((seconds.value() * self.ticks_per_second as f64).round() as u64)
    }

    /// Convert a continuous duration in minutes to ticks.
    pub fn duration_from_minutes(self, minutes: Minutes) -> TickDuration {
        self.duration_from_seconds(minutes.to_seconds())
    }

    /// The continuous length of a tick span.
    pub fn seconds(self, d: TickDuration) -> Seconds {
        Seconds(d.0 as f64 / self.ticks_per_second as f64)
    }

    /// The continuous length of a tick span, in minutes.
    pub fn minutes(self, d: TickDuration) -> Minutes {
        self.seconds(d).to_minutes()
    }

    /// Data delivered by a stream of rate `rate` over the span `d`.
    pub fn data_over(self, rate: Mbps, d: TickDuration) -> Mbits {
        rate * self.seconds(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_times_minutes_applies_the_sixty() {
        // The paper's canonical example: a 120-minute MPEG-1 video at
        // 1.5 Mb/s is 60·1.5·120 = 10 800 Mbits = 1 350 MBytes.
        let size = Mbps(1.5) * Minutes(120.0);
        assert_eq!(size, Mbits(10_800.0));
        assert_eq!(size.to_mbytes(), MBytes(1_350.0));
    }

    #[test]
    fn transmission_time_roundtrip() {
        let seg = Mbps(1.5) * Minutes(12.0); // a 12-minute fragment
        let t = seg / Mbps(4.5); // sent at 3× the display rate
        assert!((t.to_minutes().value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mbyte_mbit_roundtrip() {
        assert_eq!(MBytes(33.0).to_mbits(), Mbits(264.0));
        assert_eq!(Mbits(264.0).to_mbytes(), MBytes(33.0));
    }

    #[test]
    fn display_respects_precision() {
        assert_eq!(format!("{:.2}", Mbps(1.5)), "1.50 Mb/s");
        assert_eq!(format!("{}", Minutes(2.0)), "2 min");
    }

    #[test]
    fn tick_scale_conversions() {
        let scale = TickScale::default();
        let d = scale.duration_from_minutes(Minutes(2.0));
        assert_eq!(d, TickDuration(12_000));
        assert_eq!(scale.minutes(d), Minutes(2.0));
        // 1.5 Mb/s over 2 minutes = 180 Mbits.
        assert_eq!(scale.data_over(Mbps(1.5), d), Mbits(180.0));
    }

    #[test]
    fn ticks_since() {
        assert_eq!(Ticks(10).since(Ticks(4)), TickDuration(6));
        assert_eq!(Ticks(4).saturating_since(Ticks(10)), TickDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn ticks_since_panics_on_negative() {
        let _ = Ticks(4).since(Ticks(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tick_scale_rejected() {
        let _ = TickScale::new(0);
    }

    #[test]
    fn sums_work() {
        let total: Mbits = [Mbits(1.0), Mbits(2.5), Mbits(3.5)].into_iter().sum();
        assert_eq!(total, Mbits(7.0));
        let span: TickDuration = [TickDuration(3), TickDuration(4)].into_iter().sum();
        assert_eq!(span, TickDuration(7));
    }

    proptest! {
        #[test]
        fn ratio_is_inverse_of_scale(v in 0.001_f64..1e6, k in 0.001_f64..1e3) {
            let q = Mbits(v);
            let scaled = q * k;
            prop_assert!((scaled / q - k).abs() < 1e-9 * k.max(1.0));
        }

        #[test]
        fn minutes_seconds_roundtrip(v in 0.0_f64..1e6) {
            let m = Minutes(v);
            prop_assert!(m.to_seconds().to_minutes().approx_eq(m, 1e-9 * v.max(1.0)));
        }

        #[test]
        fn data_over_matches_manual(rate in 0.1_f64..1e3, ticks in 0u64..10_000_000) {
            let scale = TickScale::default();
            let got = scale.data_over(Mbps(rate), TickDuration(ticks));
            let want = rate * ticks as f64 / 100.0;
            prop_assert!((got.value() - want).abs() < 1e-6 * want.max(1.0));
        }

        #[test]
        fn duration_roundtrip_is_within_half_tick(secs in 0.0_f64..1e5) {
            let scale = TickScale::new(1000);
            let d = scale.duration_from_seconds(Seconds(secs));
            prop_assert!((scale.seconds(d).value() - secs).abs() <= 0.5 / 1000.0 + 1e-9);
        }
    }
}
