//! Sliding-window popularity estimation.
//!
//! The paper fixes the popular set offline from a Zipf model (§1). A real
//! metropolitan server does not get that luxury: popularity drifts with
//! release schedules and time of day, so the controller has to *estimate*
//! it online from the request stream it actually observes.
//!
//! [`PopularityEstimator`] keeps one exponentially-decayed counter per
//! title. On each observed request at time `t`, every counter is first
//! scaled by `0.5^((t − t_last)/half_life)` and the requested title's
//! counter is then incremented by one. The result behaves like a sliding
//! window of width ≈ `half_life / ln 2` request-minutes: a title that
//! stops being asked for loses half its score every `half_life` minutes,
//! while a surging title overtakes it smoothly rather than on a cliff.
//!
//! Two properties the control plane relies on:
//!
//! * **Determinism** — the estimator is a pure fold over the (time-ordered)
//!   request stream; no clocks, no randomness.
//! * **Scale invariance of ranking** — decay multiplies *all* counters by
//!   the same factor, so the ranking (and any ratio of two scores, which is
//!   what the hysteresis test in [`crate::allocator`] uses) is unaffected
//!   by how much idle time passed since the last observation.

use vod_units::Minutes;

/// Exponentially-decayed per-title request counter.
///
/// See the module docs for the decay model. Observations must arrive in
/// non-decreasing time order (the simulation engine guarantees this);
/// an observation timestamped before the previous one is counted without
/// further decay rather than rewinding history.
#[derive(Debug, Clone, PartialEq)]
pub struct PopularityEstimator {
    /// Decay half-life in minutes.
    half_life: f64,
    /// Decayed request count per title, indexed by catalog rank.
    counts: Vec<f64>,
    /// Timestamp of the most recent decay, in minutes.
    last: f64,
}

impl PopularityEstimator {
    /// A fresh estimator over `titles` titles with the given half-life.
    ///
    /// # Panics
    /// Panics if `titles` is zero or the half-life is not positive and
    /// finite.
    #[must_use]
    pub fn new(titles: usize, half_life: Minutes) -> Self {
        assert!(titles > 0, "estimator needs at least one title");
        let hl = half_life.value();
        assert!(
            hl.is_finite() && hl > 0.0,
            "half-life must be positive and finite, got {hl}"
        );
        Self {
            half_life: hl,
            counts: vec![0.0; titles],
            last: 0.0,
        }
    }

    /// Number of titles tracked.
    #[must_use]
    pub fn titles(&self) -> usize {
        self.counts.len()
    }

    /// Record one request for `video` at time `at`.
    ///
    /// # Panics
    /// Panics if `video` is out of range.
    pub fn observe(&mut self, at: Minutes, video: usize) {
        self.decay_to(at.value());
        self.counts[video] += 1.0;
    }

    /// The decayed score of one title.
    #[must_use]
    pub fn score(&self, video: usize) -> f64 {
        self.counts[video]
    }

    /// All decayed scores, indexed by title.
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.counts
    }

    /// Titles ordered by descending score, ties broken toward the lower
    /// index (so an all-zero estimator ranks titles in catalog order).
    #[must_use]
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.sort_by(|&a, &b| {
            self.counts[b]
                .partial_cmp(&self.counts[a])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        order
    }

    /// Scale every counter down for the time elapsed since the last
    /// observation. A no-op for `at ≤ last` (out-of-order timestamps do
    /// not rewind history).
    fn decay_to(&mut self, at: f64) {
        if at > self.last {
            let factor = 0.5_f64.powf((at - self.last) / self.half_life);
            for c in &mut self.counts {
                *c *= factor;
            }
            self.last = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_half_life_halves_the_score() {
        let mut est = PopularityEstimator::new(2, Minutes(10.0));
        est.observe(Minutes(0.0), 0);
        assert_eq!(est.score(0), 1.0);
        est.observe(Minutes(10.0), 1);
        assert!((est.score(0) - 0.5).abs() < 1e-12);
        assert_eq!(est.score(1), 1.0);
    }

    #[test]
    fn ranking_tracks_a_popularity_shift() {
        let mut est = PopularityEstimator::new(3, Minutes(5.0));
        // Title 0 is hot early…
        for i in 0..10 {
            est.observe(Minutes(f64::from(i)), 0);
        }
        assert_eq!(est.ranked()[0], 0);
        // …then the audience moves to title 2.
        for i in 0..10 {
            est.observe(Minutes(30.0 + f64::from(i)), 2);
        }
        assert_eq!(est.ranked(), vec![2, 0, 1]);
    }

    #[test]
    fn zero_history_ranks_in_catalog_order() {
        let est = PopularityEstimator::new(4, Minutes(1.0));
        assert_eq!(est.ranked(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn decay_preserves_score_ratios() {
        // Ranking and hysteresis ratios must be invariant under idle decay.
        let mut est = PopularityEstimator::new(2, Minutes(7.0));
        for _ in 0..4 {
            est.observe(Minutes(1.0), 0);
        }
        est.observe(Minutes(1.0), 1);
        let ratio_before = est.score(0) / est.score(1);
        // A later observation of an unrelated title decays both. Seven
        // half-lives → an exact power-of-two factor, so the arithmetic
        // below is exact.
        est.observe(Minutes(50.0), 1);
        let ratio_after = est.score(0) / (est.score(1) - 1.0);
        assert!((ratio_before - ratio_after).abs() < 1e-6);
    }

    #[test]
    fn out_of_order_observation_does_not_rewind() {
        let mut est = PopularityEstimator::new(2, Minutes(10.0));
        est.observe(Minutes(20.0), 0);
        est.observe(Minutes(5.0), 1); // stale timestamp: counted, no decay
        assert_eq!(est.score(0), 1.0);
        assert_eq!(est.score(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn zero_half_life_is_rejected() {
        let _ = PopularityEstimator::new(1, Minutes(0.0));
    }
}
