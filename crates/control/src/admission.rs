//! Admission control for the batching pool.
//!
//! The broadcast half is load-independent — its latency bound holds no
//! matter how many clients tune in. The batching pool is not: under
//! overload its queues grow without bound, every waiter's latency
//! degrades, and most of them renege anyway after having wasted queue
//! residency. Classic admission control trades those doomed admissions
//! for an explicit, immediate answer: *reject* (turn the viewer away now)
//! or *defer* (ask them to retry shortly, keeping their original patience
//! deadline).
//!
//! Deferral follows a bounded **exponential backoff** ([`Backoff`]): the
//! first retry comes after `base`, each further one `factor`× later, and
//! after `max_attempts` tries the request is rejected outright. The old
//! single fixed delay is the `factor = 1` special case
//! ([`Backoff::fixed`]); the cap keeps an overloaded system from carrying
//! an unbounded retry population.
//!
//! The load signal is the **projected channel load**: busy channels plus
//! queued requests (plus the candidate itself), over the pool size. Queued
//! requests are an upper bound on the backlog — batching may serve several
//! waiters of one title with a single stream — so the ceiling is
//! calibrated in units of "pool-service worth of work", typically a few
//! multiples of 1.0.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

// The schedule type itself lives at the bottom of the dependency stack
// so the crash-recovery supervisor can reuse it; this re-export keeps
// `sb_control::Backoff` (and `sb_control::admission::Backoff`) working.
pub use sb_resilience::Backoff;

/// What the controller tells an arriving pool request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Join the queue.
    Admit,
    /// Come back after this delay; the original patience deadline stands.
    Defer(Minutes),
    /// Turned away outright.
    Reject,
}

/// Threshold rule on the projected pool load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// Maximum admissible projected load (see [module docs](self)).
    pub ceiling: f64,
    /// If set, over-ceiling requests back off and retry instead of being
    /// rejected (they still reject once the retry would pass their
    /// patience deadline, or once the attempt budget runs out).
    pub retry: Option<Backoff>,
}

impl AdmissionControl {
    /// A reject-only controller with the given load ceiling.
    ///
    /// # Panics
    /// Panics if the ceiling is not positive and finite.
    #[must_use]
    pub fn new(ceiling: f64) -> Self {
        assert!(
            ceiling.is_finite() && ceiling > 0.0,
            "admission ceiling must be positive and finite, got {ceiling}"
        );
        Self {
            ceiling,
            retry: None,
        }
    }

    /// Defer over-ceiling requests on `backoff` instead of rejecting.
    #[must_use]
    pub fn with_retry(mut self, backoff: Backoff) -> Self {
        self.retry = Some(backoff);
        self
    }

    /// The projected load if one more request joins: busy channels plus
    /// queued requests plus the candidate, over the pool size.
    #[must_use]
    pub fn projected_load(busy: usize, queued: usize, pool: usize) -> f64 {
        (busy + queued + 1) as f64 / pool.max(1) as f64
    }

    /// Decide for a request arriving when `busy` of `pool` channels are
    /// streaming and `queued` requests wait. `attempt` counts the retries
    /// this request has already been through (0 for a fresh arrival); an
    /// over-ceiling request defers while its backoff budget lasts and is
    /// rejected after.
    #[must_use]
    pub fn decide(
        &self,
        busy: usize,
        queued: usize,
        pool: usize,
        attempt: u32,
    ) -> AdmissionDecision {
        if Self::projected_load(busy, queued, pool) <= self.ceiling {
            AdmissionDecision::Admit
        } else {
            match self.retry.and_then(|b| b.delay(attempt)) {
                Some(delay) => AdmissionDecision::Defer(delay),
                None => AdmissionDecision::Reject,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_under_the_ceiling() {
        let a = AdmissionControl::new(2.0);
        // (5 busy + 4 queued + 1) / 5 = 2.0: exactly at the ceiling.
        assert_eq!(a.decide(5, 4, 5, 0), AdmissionDecision::Admit);
        assert_eq!(a.decide(0, 0, 5, 0), AdmissionDecision::Admit);
    }

    #[test]
    fn rejects_over_the_ceiling() {
        let a = AdmissionControl::new(2.0);
        assert_eq!(a.decide(5, 5, 5, 0), AdmissionDecision::Reject);
    }

    #[test]
    fn defers_when_retry_is_configured() {
        let a = AdmissionControl::new(1.0).with_retry(Backoff::fixed(Minutes(3.0)).unwrap());
        assert_eq!(a.decide(4, 2, 4, 0), AdmissionDecision::Defer(Minutes(3.0)));
        assert_eq!(a.decide(0, 0, 4, 0), AdmissionDecision::Admit);
    }

    #[test]
    fn backoff_budget_drives_the_defer_to_reject_transition() {
        // The schedule itself is pinned in `sb_resilience::backoff`; here
        // only the admission-side consequences matter.
        let b = Backoff::new(Minutes(2.0), 2.0, 3).unwrap();
        let a = AdmissionControl::new(1.0).with_retry(b);
        assert_eq!(a.decide(4, 2, 4, 1), AdmissionDecision::Defer(Minutes(4.0)));
        // Attempt budget exhausted: over-ceiling now rejects.
        assert_eq!(a.decide(4, 2, 4, 3), AdmissionDecision::Reject);
    }

    #[test]
    fn empty_pool_never_divides_by_zero() {
        assert!(AdmissionControl::projected_load(0, 0, 0).is_finite());
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn non_positive_ceiling_is_rejected() {
        let _ = AdmissionControl::new(0.0);
    }
}
