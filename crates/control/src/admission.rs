//! Admission control for the batching pool.
//!
//! The broadcast half is load-independent — its latency bound holds no
//! matter how many clients tune in. The batching pool is not: under
//! overload its queues grow without bound, every waiter's latency
//! degrades, and most of them renege anyway after having wasted queue
//! residency. Classic admission control trades those doomed admissions
//! for an explicit, immediate answer: *reject* (turn the viewer away now)
//! or *defer* (ask them to retry shortly, keeping their original patience
//! deadline).
//!
//! Deferral follows a bounded **exponential backoff** ([`Backoff`]): the
//! first retry comes after `base`, each further one `factor`× later, and
//! after `max_attempts` tries the request is rejected outright. The old
//! single fixed delay is the `factor = 1` special case
//! ([`Backoff::fixed`]); the cap keeps an overloaded system from carrying
//! an unbounded retry population.
//!
//! The load signal is the **projected channel load**: busy channels plus
//! queued requests (plus the candidate itself), over the pool size. Queued
//! requests are an upper bound on the backlog — batching may serve several
//! waiters of one title with a single stream — so the ceiling is
//! calibrated in units of "pool-service worth of work", typically a few
//! multiples of 1.0.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::error::{Result, SchemeError};

/// Bounded exponential backoff for deferred admissions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Minutes,
    /// Multiplier applied per further retry (`1.0` = fixed delay).
    pub factor: f64,
    /// Retries allowed before the request is rejected outright.
    pub max_attempts: u32,
}

impl Backoff {
    /// A backoff schedule: retry after `base`, then `base·factor`, then
    /// `base·factor²`, …, giving up after `max_attempts` retries.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless the base delay is positive
    /// and finite, the factor is at least 1 and finite, and at least one
    /// attempt is allowed.
    pub fn new(base: Minutes, factor: f64, max_attempts: u32) -> Result<Self> {
        if !(base.value() > 0.0 && base.value().is_finite()) {
            return Err(SchemeError::InvalidConfig {
                what: "backoff base delay must be positive and finite",
            });
        }
        if !(factor >= 1.0 && factor.is_finite()) {
            return Err(SchemeError::InvalidConfig {
                what: "backoff factor must be at least 1 and finite",
            });
        }
        if max_attempts == 0 {
            return Err(SchemeError::InvalidConfig {
                what: "backoff needs at least one attempt",
            });
        }
        Ok(Self {
            base,
            factor,
            max_attempts,
        })
    }

    /// The old fixed-delay behaviour: every retry waits `delay`, with a
    /// generous attempt cap standing in for "unbounded".
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless the delay is positive and
    /// finite.
    pub fn fixed(delay: Minutes) -> Result<Self> {
        Self::new(delay, 1.0, u32::MAX)
    }

    /// The ceiling an exponential schedule saturates at: one day. Past
    /// it, a "retry later" answer is indistinguishable from a rejection,
    /// and the unclamped product overflows to `inf` within a few dozen
    /// doublings anyway.
    pub const MAX_DELAY: Minutes = Minutes(24.0 * 60.0);

    /// Delay before retry number `attempt` (0-based), or `None` once the
    /// attempt budget is exhausted.
    ///
    /// The schedule saturates: the delay never exceeds
    /// `max(base, `[`Backoff::MAX_DELAY`]`)`, so a generous attempt
    /// budget (e.g. [`Backoff::fixed`]'s `u32::MAX`) cannot drive the
    /// product to `inf` or a multi-year deferral.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Option<Minutes> {
        if attempt >= self.max_attempts {
            return None;
        }
        // Clamp the exponent before the i32 cast (`attempt` may be huge
        // under a fixed schedule) — factor ≥ 1, so past the clamp the
        // raw product is far beyond the saturation point regardless.
        let exp = attempt.min(1 << 16) as i32;
        let raw = self.base.value() * self.factor.powi(exp);
        let cap = Self::MAX_DELAY.value().max(self.base.value());
        Some(Minutes(raw.min(cap)))
    }
}

/// What the controller tells an arriving pool request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Join the queue.
    Admit,
    /// Come back after this delay; the original patience deadline stands.
    Defer(Minutes),
    /// Turned away outright.
    Reject,
}

/// Threshold rule on the projected pool load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// Maximum admissible projected load (see [module docs](self)).
    pub ceiling: f64,
    /// If set, over-ceiling requests back off and retry instead of being
    /// rejected (they still reject once the retry would pass their
    /// patience deadline, or once the attempt budget runs out).
    pub retry: Option<Backoff>,
}

impl AdmissionControl {
    /// A reject-only controller with the given load ceiling.
    ///
    /// # Panics
    /// Panics if the ceiling is not positive and finite.
    #[must_use]
    pub fn new(ceiling: f64) -> Self {
        assert!(
            ceiling.is_finite() && ceiling > 0.0,
            "admission ceiling must be positive and finite, got {ceiling}"
        );
        Self {
            ceiling,
            retry: None,
        }
    }

    /// Defer over-ceiling requests on `backoff` instead of rejecting.
    #[must_use]
    pub fn with_retry(mut self, backoff: Backoff) -> Self {
        self.retry = Some(backoff);
        self
    }

    /// The projected load if one more request joins: busy channels plus
    /// queued requests plus the candidate, over the pool size.
    #[must_use]
    pub fn projected_load(busy: usize, queued: usize, pool: usize) -> f64 {
        (busy + queued + 1) as f64 / pool.max(1) as f64
    }

    /// Decide for a request arriving when `busy` of `pool` channels are
    /// streaming and `queued` requests wait. `attempt` counts the retries
    /// this request has already been through (0 for a fresh arrival); an
    /// over-ceiling request defers while its backoff budget lasts and is
    /// rejected after.
    #[must_use]
    pub fn decide(
        &self,
        busy: usize,
        queued: usize,
        pool: usize,
        attempt: u32,
    ) -> AdmissionDecision {
        if Self::projected_load(busy, queued, pool) <= self.ceiling {
            AdmissionDecision::Admit
        } else {
            match self.retry.and_then(|b| b.delay(attempt)) {
                Some(delay) => AdmissionDecision::Defer(delay),
                None => AdmissionDecision::Reject,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_under_the_ceiling() {
        let a = AdmissionControl::new(2.0);
        // (5 busy + 4 queued + 1) / 5 = 2.0: exactly at the ceiling.
        assert_eq!(a.decide(5, 4, 5, 0), AdmissionDecision::Admit);
        assert_eq!(a.decide(0, 0, 5, 0), AdmissionDecision::Admit);
    }

    #[test]
    fn rejects_over_the_ceiling() {
        let a = AdmissionControl::new(2.0);
        assert_eq!(a.decide(5, 5, 5, 0), AdmissionDecision::Reject);
    }

    #[test]
    fn defers_when_retry_is_configured() {
        let a = AdmissionControl::new(1.0).with_retry(Backoff::fixed(Minutes(3.0)).unwrap());
        assert_eq!(a.decide(4, 2, 4, 0), AdmissionDecision::Defer(Minutes(3.0)));
        assert_eq!(a.decide(0, 0, 4, 0), AdmissionDecision::Admit);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps_out() {
        let b = Backoff::new(Minutes(2.0), 2.0, 3).unwrap();
        assert_eq!(b.delay(0), Some(Minutes(2.0)));
        assert_eq!(b.delay(1), Some(Minutes(4.0)));
        assert_eq!(b.delay(2), Some(Minutes(8.0)));
        assert_eq!(b.delay(3), None);

        let a = AdmissionControl::new(1.0).with_retry(b);
        assert_eq!(a.decide(4, 2, 4, 1), AdmissionDecision::Defer(Minutes(4.0)));
        // Attempt budget exhausted: over-ceiling now rejects.
        assert_eq!(a.decide(4, 2, 4, 3), AdmissionDecision::Reject);
    }

    #[test]
    fn backoff_saturates_at_the_documented_max_delay() {
        // Doubling from 2 minutes passes the one-day cap at attempt 10
        // (2·2¹⁰ = 2048 > 1440); from there every delay is exactly the cap.
        let b = Backoff::new(Minutes(2.0), 2.0, u32::MAX).unwrap();
        assert_eq!(b.delay(9), Some(Minutes(1024.0)));
        assert_eq!(b.delay(10), Some(Backoff::MAX_DELAY));
        assert_eq!(b.delay(100), Some(Backoff::MAX_DELAY));
        // Exponents that would overflow `powi` (or wrap the i32 cast)
        // still saturate finitely.
        let d = b.delay(u32::MAX - 1).unwrap();
        assert!(d.value().is_finite());
        assert_eq!(d, Backoff::MAX_DELAY);
        // A fixed schedule is untouched by the cap.
        let f = Backoff::fixed(Minutes(3.0)).unwrap();
        assert_eq!(f.delay(u32::MAX - 1), Some(Minutes(3.0)));
        // A base above the cap is honoured — saturation never shrinks
        // the first delay.
        let big = Backoff::new(Minutes(10_000.0), 2.0, 5).unwrap();
        assert_eq!(big.delay(0), Some(Minutes(10_000.0)));
        assert_eq!(big.delay(4), Some(Minutes(10_000.0)));
    }

    #[test]
    fn backoff_construction_validates() {
        assert!(Backoff::new(Minutes(0.0), 2.0, 3).is_err());
        assert!(Backoff::new(Minutes(1.0), 0.5, 3).is_err());
        assert!(Backoff::new(Minutes(1.0), 2.0, 0).is_err());
        assert!(Backoff::fixed(Minutes(-1.0)).is_err());
        assert!(Backoff::new(Minutes(1.0), 1.0, 1).is_ok());
    }

    #[test]
    fn empty_pool_never_divides_by_zero() {
        assert!(AdmissionControl::projected_load(0, 0, 0).is_finite());
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn non_positive_ceiling_is_rejected() {
        let _ = AdmissionControl::new(0.0);
    }
}
