//! Dynamic reassignment of skyscraper channel groups.
//!
//! The broadcast half of the hybrid owns `m` *slots*, each a complete
//! K-channel skyscraper group periodically broadcasting one title. The
//! allocator decides which title occupies which slot as popularity drifts,
//! under two rules:
//!
//! * **Drain safety.** A swap never takes effect mid-cycle. Each slot has a
//!   phase origin `since`; its first-fragment cycles start at
//!   `since + j·D₁`. A swap planned at time `T` becomes *effective* at the
//!   next cycle boundary strictly after `T`, so the cycle in flight — and
//!   every client admitted against it — completes under the old title.
//!   Clients admitted between `T` and the boundary still get the old title
//!   (the committed assignment is what [`ChannelAllocator::slot_of`]
//!   reports until maturity). No client's in-flight session is ever
//!   truncated or re-pointed.
//! * **Hysteresis.** A challenger displaces an incumbent only if
//!   `score(challenger) > score(incumbent) · (1 + margin)`. Without the
//!   margin, two titles oscillating around equal popularity would swap on
//!   every tick, churning the schedule for no latency gain.
//!
//! Promotion and demotion are two faces of the same swap: the challenger
//! is promoted from the batching pool into the slot, the incumbent is
//! demoted back to the pool. Viewers already queued for the promoted title
//! in the pool stay there and are served by the pool (their sessions are
//! not invalidated either); only *new* arrivals see the broadcast.

use vod_units::Minutes;

/// A swap that has been planned but has not yet reached its cycle
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingSwap {
    /// Title that will occupy the slot once the swap matures.
    pub to: usize,
    /// Absolute time at which the swap takes effect — always a cycle
    /// boundary of the slot, strictly after the planning instant.
    pub effective: Minutes,
}

/// One skyscraper channel group and its current occupant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// Title currently being broadcast (the *committed* assignment).
    pub video: usize,
    /// Phase origin: first-fragment cycles start at `since + j·D₁`.
    pub since: Minutes,
    /// The swap in flight, if any. At most one per slot.
    pub pending: Option<PendingSwap>,
}

/// A swap recorded at planning time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedSwap {
    /// Index of the affected slot.
    pub slot: usize,
    /// Incumbent title being demoted.
    pub from: usize,
    /// Challenger title being promoted.
    pub to: usize,
    /// When the swap will take effect.
    pub effective: Minutes,
}

/// A swap that has matured and been committed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommittedSwap {
    /// Index of the affected slot.
    pub slot: usize,
    /// Title that was demoted.
    pub from: usize,
    /// Title that was promoted.
    pub to: usize,
    /// The cycle boundary at which the swap took effect.
    pub at: Minutes,
}

/// Assigns broadcast slots to titles with drain-safe, hysteretic swaps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelAllocator {
    slots: Vec<Slot>,
    /// First-fragment cycle length `D₁` (= the SB access-latency bound).
    period: f64,
    /// Relative score margin a challenger must clear.
    hysteresis: f64,
    /// Slots currently out of service (channel outage). A down slot keeps
    /// its committed occupant but serves nobody, plans nothing, and is
    /// skipped by [`ChannelAllocator::slot_of`] until restored.
    down: Vec<bool>,
}

impl ChannelAllocator {
    /// A fresh allocator broadcasting `initial` (one title per slot, all
    /// phase origins at time zero).
    ///
    /// # Panics
    /// Panics if `initial` is empty or contains duplicates, the period is
    /// not positive and finite, or the hysteresis margin is negative.
    #[must_use]
    pub fn new(initial: &[usize], period: Minutes, hysteresis: f64) -> Self {
        assert!(!initial.is_empty(), "allocator needs at least one slot");
        let p = period.value();
        assert!(
            p.is_finite() && p > 0.0,
            "cycle period must be positive and finite, got {p}"
        );
        assert!(
            hysteresis >= 0.0 && hysteresis.is_finite(),
            "hysteresis margin must be non-negative and finite"
        );
        let mut seen = initial.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), initial.len(), "initial hot set has duplicates");
        Self {
            slots: initial
                .iter()
                .map(|&video| Slot {
                    video,
                    since: Minutes(0.0),
                    pending: None,
                })
                .collect(),
            period: p,
            hysteresis,
            down: vec![false; initial.len()],
        }
    }

    /// Number of broadcast slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The *servable* slot currently (committed) broadcasting `video`,
    /// if any. A slot taken out of service by an outage is skipped — its
    /// occupant is dark, not broadcast.
    #[must_use]
    pub fn slot_of(&self, video: usize) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.video == video)
            .filter(|&i| !self.down[i])
    }

    /// The slot assigned to `video` regardless of service state — the
    /// committed assignment, dark or not.
    #[must_use]
    pub fn slot_of_any(&self, video: usize) -> Option<usize> {
        self.slots.iter().position(|s| s.video == video)
    }

    /// `true` while `slot` is out of service.
    #[must_use]
    pub fn is_down(&self, slot: usize) -> bool {
        self.down[slot]
    }

    /// Take `slot` out of service (channel outage). Any swap in flight is
    /// cancelled — it can no longer drain safely — and returned so the
    /// caller can account for the aborted reconfiguration. The committed
    /// occupant keeps the slot; it is simply dark until
    /// [`ChannelAllocator::restore`].
    pub fn out_of_service(&mut self, slot: usize) -> Option<PendingSwap> {
        self.down[slot] = true;
        self.slots[slot].pending.take()
    }

    /// Bring `slot` back into service at `now`. The phase origin moves to
    /// the restore instant — the dark period broadcast nothing, so cycles
    /// restart fresh rather than pretending continuity.
    pub fn restore(&mut self, slot: usize, now: Minutes) {
        self.down[slot] = false;
        self.slots[slot].since = now;
    }

    /// Cancel every pending swap (server restart: in-flight
    /// reconfigurations do not survive a crash). Returns how many were
    /// dropped.
    pub fn cancel_all_pending(&mut self) -> usize {
        let mut n = 0;
        for s in &mut self.slots {
            if s.pending.take().is_some() {
                n += 1;
            }
        }
        n
    }

    /// The committed hot set, in slot order.
    #[must_use]
    pub fn hot_videos(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.video).collect()
    }

    /// Wait until the next first-fragment cycle of `slot` starts, seen
    /// from time `t`. Zero exactly on a boundary (the client catches the
    /// cycle that starts this instant).
    #[must_use]
    pub fn wait_for(&self, slot: usize, t: Minutes) -> Minutes {
        let rel = (t.value() - self.slots[slot].since.value()).rem_euclid(self.period);
        if rel == 0.0 {
            Minutes(0.0)
        } else {
            Minutes(self.period - rel)
        }
    }

    /// The first cycle boundary of `slot` strictly after `now` — the
    /// earliest instant a swap planned at `now` may take effect. Being
    /// strict even on an exact boundary guarantees the cycle in flight
    /// always completes under the old title.
    #[must_use]
    pub fn next_boundary(&self, slot: usize, now: Minutes) -> Minutes {
        let since = self.slots[slot].since.value();
        let elapsed = (now.value() - since).max(0.0);
        let k = (elapsed / self.period).floor();
        Minutes(since + (k + 1.0) * self.period)
    }

    /// Commit every pending swap whose effective time has been reached.
    /// The slot's phase origin moves to the boundary, so the new title's
    /// cycles are aligned with the moment it took over. Returns the
    /// commits in slot order.
    pub fn commit_matured(&mut self, now: Minutes) -> Vec<CommittedSwap> {
        let mut out = Vec::new();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(p) = s.pending {
                if p.effective.value() <= now.value() {
                    out.push(CommittedSwap {
                        slot: i,
                        from: s.video,
                        to: p.to,
                        at: p.effective,
                    });
                    s.video = p.to;
                    s.since = p.effective;
                    s.pending = None;
                }
            }
        }
        out
    }

    /// Plan swaps toward the top-`slots()` titles of `scores`.
    ///
    /// Challengers (desired titles not already committed or in flight)
    /// are paired strongest-first against demotable incumbents
    /// weakest-first; each pair swaps only if the challenger clears the
    /// hysteresis margin. Slots with a swap already in flight are left
    /// alone. Deterministic: all ties break toward the lower index.
    ///
    /// # Panics
    /// Panics if `scores` does not cover some committed or pending title.
    pub fn plan(&mut self, now: Minutes, scores: &[f64]) -> Vec<PlannedSwap> {
        let occupied: Vec<usize> = self
            .slots
            .iter()
            .flat_map(|s| core::iter::once(s.video).chain(s.pending.iter().map(|p| p.to)))
            .collect();

        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        let desired: Vec<usize> = order.into_iter().take(self.slots.len()).collect();

        // Challengers, strongest first.
        let challengers: Vec<usize> = desired
            .iter()
            .copied()
            .filter(|v| !occupied.contains(v))
            .collect();
        // Demotable incumbents, weakest first (ties toward lower slot).
        // Down slots are not demotable: a dark channel cannot drain a
        // swap, so reconfiguration waits for restoration.
        let mut demotable: Vec<usize> = (0..self.slots.len())
            .filter(|&i| {
                !self.down[i]
                    && self.slots[i].pending.is_none()
                    && !desired.contains(&self.slots[i].video)
            })
            .collect();
        demotable.sort_by(|&a, &b| {
            scores[self.slots[a].video]
                .partial_cmp(&scores[self.slots[b].video])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });

        let mut out = Vec::new();
        for (&to, &slot) in challengers.iter().zip(&demotable) {
            let from = self.slots[slot].video;
            // Strongest challenger vs weakest incumbent: if this pair
            // fails the margin, every later pair fails it too.
            if scores[to] <= scores[from] * (1.0 + self.hysteresis) {
                break;
            }
            let effective = self.next_boundary(slot, now);
            self.slots[slot].pending = Some(PendingSwap { to, effective });
            out.push(PlannedSwap {
                slot,
                from,
                to,
                effective,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(hot: &[usize], period: f64, hyst: f64) -> ChannelAllocator {
        ChannelAllocator::new(hot, Minutes(period), hyst)
    }

    #[test]
    fn wait_wraps_the_cycle() {
        let a = alloc(&[0, 1], 2.0, 0.0);
        assert_eq!(a.wait_for(0, Minutes(0.0)), Minutes(0.0));
        assert_eq!(a.wait_for(0, Minutes(0.5)), Minutes(1.5));
        assert_eq!(a.wait_for(0, Minutes(2.0)), Minutes(0.0));
        assert_eq!(a.wait_for(0, Minutes(3.5)), Minutes(0.5));
    }

    #[test]
    fn swap_matures_only_at_the_next_cycle_boundary() {
        let mut a = alloc(&[0, 1], 2.0, 0.0);
        let scores = [0.0, 5.0, 10.0]; // title 2 should displace title 0
        let planned = a.plan(Minutes(2.5), &scores);
        assert_eq!(planned.len(), 1);
        let p = planned[0];
        assert_eq!((p.from, p.to), (0, 2));
        // Planned at 2.5 within cycle [2, 4): effective at 4, not before.
        assert_eq!(p.effective, Minutes(4.0));
        // The in-flight cycle still belongs to the incumbent.
        assert!(a.commit_matured(Minutes(3.9)).is_empty());
        assert_eq!(a.slot_of(0), Some(0));
        assert_eq!(a.slot_of(2), None);
        // At the boundary the swap commits and re-phases the slot.
        let committed = a.commit_matured(Minutes(4.0));
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].at, Minutes(4.0));
        assert_eq!(a.slot_of(2), Some(0));
        assert_eq!(a.slot_of(0), None);
        assert_eq!(a.wait_for(0, Minutes(4.0)), Minutes(0.0));
    }

    #[test]
    fn boundary_planning_still_drains_a_full_cycle() {
        let mut a = alloc(&[0], 2.0, 0.0);
        // Planning exactly on a boundary defers to the *next* one, so the
        // cycle starting this instant is never cut short.
        let planned = a.plan(Minutes(4.0), &[0.0, 1.0]);
        assert_eq!(planned[0].effective, Minutes(6.0));
    }

    #[test]
    fn hysteresis_blocks_marginal_challengers() {
        let mut a = alloc(&[0], 2.0, 0.2);
        // 15% better: within the 20% margin, no swap.
        assert!(a.plan(Minutes(1.0), &[1.0, 1.15]).is_empty());
        // 25% better: clears it.
        assert_eq!(a.plan(Minutes(1.0), &[1.0, 1.25]).len(), 1);
    }

    #[test]
    fn one_swap_in_flight_per_slot() {
        let mut a = alloc(&[0], 2.0, 0.0);
        assert_eq!(a.plan(Minutes(0.5), &[0.0, 5.0, 1.0]).len(), 1);
        // A stronger challenger arrives while the first swap drains: the
        // slot is busy, nothing new is planned.
        assert!(a.plan(Minutes(1.0), &[0.0, 5.0, 50.0]).is_empty());
        a.commit_matured(Minutes(2.0));
        assert_eq!(a.hot_videos(), vec![1]);
        // Now the slot is free again and title 2 can challenge title 1.
        assert_eq!(a.plan(Minutes(2.5), &[0.0, 5.0, 50.0]).len(), 1);
    }

    #[test]
    fn strongest_challenger_takes_weakest_slot() {
        let mut a = alloc(&[0, 1], 2.0, 0.0);
        // Desired: {3, 2}; incumbents 0 (score 2) and 1 (score 1).
        let planned = a.plan(Minutes(0.5), &[2.0, 1.0, 5.0, 9.0]);
        assert_eq!(planned.len(), 2);
        assert_eq!((planned[0].from, planned[0].to), (1, 3));
        assert_eq!((planned[1].from, planned[1].to), (0, 2));
    }

    #[test]
    fn outage_takes_the_slot_dark_and_cancels_its_swap() {
        let mut a = alloc(&[0, 1], 2.0, 0.0);
        // A swap is in flight on slot 0 when the outage hits.
        let planned = a.plan(Minutes(0.5), &[0.0, 5.0, 9.0]);
        assert_eq!(planned.len(), 1);
        let slot = planned[0].slot;
        let cancelled = a.out_of_service(slot);
        assert_eq!(cancelled.map(|p| p.to), Some(2));
        assert!(a.is_down(slot));
        // Dark: the occupant is not servable, but the assignment stands.
        assert_eq!(a.slot_of(a.hot_videos()[slot]), None);
        assert_eq!(a.slot_of_any(a.hot_videos()[slot]), Some(slot));
        // The cancelled swap never commits.
        assert!(a.commit_matured(Minutes(10.0)).is_empty());
        // A down slot is not demotable either: with slot 1's occupant in
        // the desired set, the only demotable incumbent is dark, so the
        // challenger has nowhere to land.
        assert!(a.plan(Minutes(10.5), &[0.0, 5.0, 9.0]).is_empty());
    }

    #[test]
    fn restore_rephases_the_slot_to_the_restore_instant() {
        let mut a = alloc(&[0, 1], 2.0, 0.0);
        a.out_of_service(1);
        a.restore(1, Minutes(7.5));
        assert!(!a.is_down(1));
        assert_eq!(a.slot_of(1), Some(1));
        // Cycles restart at the restore instant, not the old phase.
        assert_eq!(a.wait_for(1, Minutes(7.5)), Minutes(0.0));
        assert_eq!(a.wait_for(1, Minutes(8.0)), Minutes(1.5));
    }

    #[test]
    fn restart_cancels_every_pending_swap() {
        let mut a = alloc(&[0, 1], 2.0, 0.0);
        let planned = a.plan(Minutes(0.5), &[0.0, 0.1, 5.0, 9.0]);
        assert_eq!(planned.len(), 2);
        assert_eq!(a.cancel_all_pending(), 2);
        assert!(a.commit_matured(Minutes(10.0)).is_empty());
        assert_eq!(a.hot_videos(), vec![0, 1]);
    }

    #[test]
    fn incumbent_in_desired_set_is_never_demoted() {
        let mut a = alloc(&[0, 1], 2.0, 0.0);
        // Title 0 is still top-2: only title 1 should be displaced.
        let planned = a.plan(Minutes(0.5), &[10.0, 0.1, 5.0]);
        assert_eq!(planned.len(), 1);
        assert_eq!((planned[0].from, planned[0].to), (1, 2));
    }
}
