//! The controlled hybrid simulation: broadcast slots + batching pool under
//! an online control plane.
//!
//! [`ControlledSim`] re-runs the §1 hybrid as a discrete-event simulation
//! on [`sb_sim::Engine`], with these event kinds:
//!
//! * **Arrive** — a viewer requests a title. Hot titles (committed in the
//!   [`ChannelAllocator`]) are served by the periodic broadcast: the wait
//!   is the time to the slot's next first-fragment cycle, at most `D₁`.
//!   Cold titles go through [`AdmissionControl`] into the per-title
//!   batching queues.
//! * **PoolDone** — a multicast stream finishes and frees a channel; the
//!   dispatcher purges reneged waiters and serves the next batch under
//!   the configured [`BatchPolicy`].
//! * **Tick** — the periodic control event. The estimator's scores are
//!   read, matured swaps commit, and (under [`ControlPolicy::Dynamic`])
//!   new swaps are planned toward the current top-`m` titles.
//! * **Fault events** — a [`FaultScript`] replays as first-class events:
//!   `OutageStart`/`OutageEnd` take a broadcast slot out of service and
//!   back (the allocator reacts with its drain-safe machinery, in-flight
//!   sessions are repaired per the run's [`Degradation`] policy, and new
//!   arrivals for the dark title are redirected to the pool); `Restart`
//!   models a server crash-recovery (pending swaps cancelled, estimator
//!   reset); `Churn` makes a seeded fraction of waiting clients abandon.
//!
//! Under [`ControlPolicy::Static`] the tick never plans a swap, so the
//! initial hot set `{0, …, m−1}` stays fixed — exactly the paper's
//! offline split. The workload, the pool, the admission rule, the fault
//! script and every event timestamp are identical between the two
//! policies; the *only* difference is whether reallocation happens. That
//! makes static-vs-dynamic sweeps a controlled experiment, with or
//! without faults.
//!
//! Everything is deterministic: the engine breaks timestamp ties FIFO,
//! queues are per-title vectors ordered by arrival, churn draws come from
//! a per-event seeded stream, and no clocks enter the control path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes, TickDuration, TickScale, Ticks};

use sb_batching::policy::Pending;
use sb_batching::BatchPolicy;
use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_metrics::{OpLog, Recorder, Registry, Snapshot, TeeRecorder};
use sb_resilience::{Degradation, FaultScript, ResilienceOutcome};
use sb_sim::run::RunParts;
use sb_sim::{parallel_map, shard_of, AgendaKind, Engine, EngineStats, RunConfig};
use sb_workload::{Catalog, WorkloadRequest};

use crate::admission::{AdmissionControl, AdmissionDecision, Backoff};
use crate::allocator::ChannelAllocator;
use crate::estimator::PopularityEstimator;

/// Whether the control plane may reassign broadcast slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlPolicy {
    /// The paper's offline split: the initial hot set never changes.
    Static,
    /// Online reallocation: ticks plan hysteretic, drain-safe swaps
    /// toward the estimator's current top titles.
    Dynamic,
}

impl core::fmt::Display for ControlPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ControlPolicy::Static => write!(f, "static"),
            ControlPolicy::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// Configuration of the controlled hybrid server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Catalog size (titles are popularity ranks `0..titles`).
    pub titles: usize,
    /// Number of broadcast slots `m` (each a K-channel skyscraper group).
    pub hot_slots: usize,
    /// Total server network-I/O bandwidth.
    pub total_bandwidth: Mbps,
    /// Fraction of bandwidth reserved for the broadcast half, in `(0, 1)`.
    pub broadcast_fraction: f64,
    /// Skyscraper width cap for the broadcast half.
    pub width: Width,
    /// Batch-selection policy for the pool.
    pub batch: BatchPolicy,
    /// Control-tick period.
    pub tick: Minutes,
    /// Popularity-estimator decay half-life.
    pub half_life: Minutes,
    /// Hysteresis margin a challenger must clear to displace an incumbent.
    pub hysteresis: f64,
    /// Admission ceiling on projected pool load.
    pub admission_ceiling: f64,
    /// If set, over-ceiling requests retry on this backoff schedule
    /// instead of being rejected outright.
    pub admission_retry: Option<Backoff>,
}

impl ControlConfig {
    /// A paper-flavoured default: 40 titles, 8 broadcast slots, W = 52,
    /// MQL pool, 15-minute ticks, 45-minute half-life, 10% hysteresis,
    /// reject-only admission at 3× pool load.
    #[must_use]
    pub fn paper_defaults(total_bandwidth: Mbps) -> Self {
        Self {
            titles: 40,
            hot_slots: 8,
            total_bandwidth,
            broadcast_fraction: 0.6,
            width: Width::Capped(52),
            batch: BatchPolicy::Mql,
            tick: Minutes(15.0),
            half_life: Minutes(45.0),
            hysteresis: 0.1,
            admission_ceiling: 3.0,
            admission_retry: None,
        }
    }
}

/// What came out of a controlled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlReport {
    /// The policy that produced this report.
    pub policy: ControlPolicy,
    /// Total requests offered.
    pub requests: usize,
    /// Requests served by the broadcast half.
    pub served_broadcast: usize,
    /// Requests served by the batching pool.
    pub served_pool: usize,
    /// Requests whose patience ran out (either half), including waiters
    /// lost to churn events.
    pub defected: usize,
    /// Requests turned away by admission control.
    pub rejected: usize,
    /// Defer events issued by admission control (not terminal: a deferred
    /// request is later served, defects, or is rejected).
    pub deferred: usize,
    /// Slot swaps planned by the allocator.
    pub swaps_planned: usize,
    /// Slot swaps that matured and committed.
    pub swaps_committed: usize,
    /// Mean access latency over served requests.
    pub mean_latency: Minutes,
    /// 95th-percentile access latency over served requests.
    pub p95_latency: Minutes,
    /// Worst access latency over served requests.
    pub worst_latency: Minutes,
    /// The committed hot set at the end of the run, in slot order.
    pub final_hot: Vec<usize>,
    /// Channels (display-rate streams) held by the broadcast half.
    pub broadcast_channels: usize,
    /// Channels in the batching pool.
    pub pool_channels: usize,
    /// First-fragment cycle length `D₁` (= worst-case broadcast wait).
    pub cycle: Minutes,
    /// The recovery-side ledger: what the control plane did about the
    /// run's fault script (all-zero for a fault-free run).
    pub resilience: ResilienceOutcome,
}

impl ControlReport {
    /// Every offered request ends served, defected, or rejected.
    #[must_use]
    pub fn accounted(&self) -> usize {
        self.served_broadcast + self.served_pool + self.defected + self.rejected
    }
}

/// A waiter in a pool queue.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    /// Original arrival time (latency is measured from here, so deferral
    /// delay counts against the system).
    arrival: f64,
    /// Absolute patience deadline.
    deadline: f64,
}

/// An in-flight broadcast session, tracked for outage repair.
#[derive(Debug, Clone, Copy)]
struct BroadcastSession {
    /// When the session's first-fragment cycle started.
    start: f64,
    /// When delivery completes (extends when a repair stalls it).
    end: f64,
}

/// Engine event payloads.
enum Ev {
    /// Request `idx` arrives; `attempt` counts admission retries already
    /// behind it (0 = fresh arrival).
    Arrive { idx: usize, attempt: u32 },
    /// A pool stream finished, freeing a channel.
    PoolDone,
    /// Periodic control tick.
    Tick,
    /// Outage `idx` of the fault script begins.
    OutageStart { idx: usize },
    /// Outage `idx` of the fault script ends.
    OutageEnd { idx: usize },
    /// Server restart epoch.
    Restart,
    /// Churn event `idx` of the fault script fires.
    Churn { idx: usize },
}

/// How many whole cycles a broadcast admission may slip past burst-lost
/// first fragments before the client is counted as defected.
const MAX_SLIPS: u64 = 64;

/// The fault payload carried by [`RunConfig::faults`] into
/// [`ControlledSim::execute`]: a fault script plus the repair-lateness
/// policy that resolves it.
#[derive(Debug, Clone, Copy)]
pub struct ControlFaults<'f> {
    /// The script of outages, restarts, bursts and churn to replay.
    pub script: &'f FaultScript,
    /// How repair lateness is resolved for cut-into sessions.
    pub degradation: Degradation,
}

/// What [`ControlledSim::execute`] accepts in the fault slot: either the
/// default `()` (no faults, stall-repair — so a plain
/// `RunConfig::new(requests)` compiles) or a [`ControlFaults`] bundle.
pub trait IntoControlFaults {
    /// The script and degradation this payload stands for; `quiet` is
    /// the caller-owned empty script the fault-free case borrows.
    fn resolve<'f>(&'f self, quiet: &'f FaultScript) -> (&'f FaultScript, Degradation);
}

impl IntoControlFaults for () {
    fn resolve<'f>(&'f self, quiet: &'f FaultScript) -> (&'f FaultScript, Degradation) {
        (quiet, Degradation::Stall)
    }
}

impl IntoControlFaults for ControlFaults<'_> {
    fn resolve<'f>(&'f self, _quiet: &'f FaultScript) -> (&'f FaultScript, Degradation) {
        (self.script, self.degradation)
    }
}

/// Everything a controlled run produces, whatever the slot combination —
/// the control plane's analogue of [`sb_sim::RunOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOutcome {
    /// The control-plane report (identical to the historical
    /// `ControlledSim::run` output when `shards(1)`).
    pub summary: ControlReport,
    /// Engine statistics, summed across shards; `peak_agenda` is the
    /// maximum over shards.
    pub stats: EngineStats,
    /// Each shard's agenda high-water mark, in shard order
    /// (`len == shards`).
    pub shard_peak_agenda: Vec<u64>,
    /// Snapshot of the run's private metrics registry, merged across
    /// shards in shard order.
    pub snapshot: Snapshot,
    /// The merged popularity view: the end-of-run estimator score for
    /// every global title, stitched from each owning shard's estimator
    /// (`len == titles`).
    pub popularity: Vec<f64>,
}

/// One control shard's raw results, pre-merge.
struct ShardOut {
    report: Option<ControlReport>,
    /// Served-request latencies, minutes (sorted within the shard).
    latencies: Vec<f64>,
    /// End-of-run estimator scores, indexed by shard-local title.
    scores: Vec<f64>,
    stats: EngineStats,
    snapshot: Snapshot,
    ops: Option<OpLog>,
    err: Option<SchemeError>,
}

/// The controlled hybrid simulation (see [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledSim {
    cfg: ControlConfig,
    /// First-fragment cycle / worst-case broadcast wait `D₁`.
    d1: Minutes,
    /// Video length `D` (pool service time).
    video_length: Minutes,
    /// Title display rate (uniform across the catalog).
    display_rate: Mbps,
    broadcast_channels: usize,
    pool: usize,
}

impl ControlledSim {
    /// Size the broadcast half and the pool for `cfg` against `catalog`.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] on a malformed configuration (slot
    /// or title counts, broadcast fraction, tick period), and the usual
    /// bandwidth errors when the broadcast fraction cannot sustain one SB
    /// channel per slot or leaves an empty pool.
    pub fn new(cfg: ControlConfig, catalog: &Catalog) -> Result<Self> {
        if cfg.titles == 0 || cfg.hot_slots == 0 || cfg.hot_slots > cfg.titles {
            return Err(SchemeError::InvalidConfig {
                what: "need 0 < hot_slots <= titles",
            });
        }
        if cfg.titles > catalog.len() {
            return Err(SchemeError::InvalidConfig {
                what: "catalog smaller than configured title count",
            });
        }
        let v0 = catalog.get(0).expect("non-empty catalog");
        Self::sized(cfg, v0.length, v0.display_rate)
    }

    /// Size a server for `cfg` from the title parameters directly, with
    /// no catalog in hand — the constructor the sharded executor uses
    /// for its per-shard sub-servers.
    fn sized(cfg: ControlConfig, video_length: Minutes, display_rate: Mbps) -> Result<Self> {
        if cfg.titles == 0 || cfg.hot_slots == 0 || cfg.hot_slots > cfg.titles {
            return Err(SchemeError::InvalidConfig {
                what: "need 0 < hot_slots <= titles",
            });
        }
        if !(cfg.broadcast_fraction > 0.0 && cfg.broadcast_fraction < 1.0) {
            return Err(SchemeError::InvalidConfig {
                what: "broadcast fraction must be in (0, 1)",
            });
        }
        if !(cfg.tick.value() > 0.0 && cfg.tick.value().is_finite()) {
            return Err(SchemeError::InvalidConfig {
                what: "control tick period must be positive and finite",
            });
        }
        let sb_cfg = SystemConfig {
            server_bandwidth: Mbps(cfg.total_bandwidth.value() * cfg.broadcast_fraction),
            num_videos: cfg.hot_slots,
            video_length,
            display_rate,
        };
        let scheme = Skyscraper::with_width(cfg.width);
        let metrics = scheme.metrics(&sb_cfg)?;
        let k = scheme.channels_per_video(&sb_cfg)?;
        let broadcast_channels = k * cfg.hot_slots;
        let leftover =
            cfg.total_bandwidth.value() - broadcast_channels as f64 * display_rate.value();
        let pool = (leftover / display_rate.value()).floor() as usize;
        if pool == 0 {
            return Err(SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            });
        }
        Ok(Self {
            cfg,
            d1: metrics.access_latency,
            video_length,
            display_rate,
            broadcast_channels,
            pool,
        })
    }

    /// Worst-case broadcast wait `D₁` (also the reallocation cycle).
    #[must_use]
    pub fn cycle(&self) -> Minutes {
        self.d1
    }

    /// Channels in the batching pool.
    #[must_use]
    pub fn pool_channels(&self) -> usize {
        self.pool
    }

    /// The single-server core behind every public entry point: runs the
    /// event loop and returns, besides the report, the raw material the
    /// sharded merge needs — the sorted served-latency population, the
    /// end-of-run estimator scores, and the engine statistics.
    #[allow(clippy::too_many_lines)]
    fn run_faults_core(
        &self,
        requests: &[WorkloadRequest],
        policy: ControlPolicy,
        script: &FaultScript,
        degradation: Degradation,
        rec: &mut dyn Recorder,
        agenda: AgendaKind,
    ) -> Result<(ControlReport, Vec<f64>, Vec<f64>, EngineStats)> {
        script.validate()?;
        if script
            .outages
            .iter()
            .any(|o| o.channel >= self.cfg.hot_slots)
        {
            return Err(SchemeError::InvalidConfig {
                what: "fault script outage names a broadcast slot the config does not have",
            });
        }

        let scale = TickScale::default();
        let at_ticks = |m: f64| Ticks::ZERO + scale.duration_from_minutes(Minutes(m));

        let mut est = PopularityEstimator::new(self.cfg.titles, self.cfg.half_life);
        let initial: Vec<usize> = (0..self.cfg.hot_slots).collect();
        let mut alloc = ChannelAllocator::new(&initial, self.d1, self.cfg.hysteresis);
        let mut adm = AdmissionControl::new(self.cfg.admission_ceiling);
        adm.retry = self.cfg.admission_retry;

        let mut eng: Engine<Ev> = Engine::with_agenda(agenda);
        let mut horizon = 0.0_f64;
        for (idx, r) in requests.iter().enumerate() {
            eng.schedule_at(at_ticks(r.at.value()), Ev::Arrive { idx, attempt: 0 });
            horizon = horizon.max(r.at.value());
        }
        let tick = self.cfg.tick.value();
        let mut t = tick;
        while t <= horizon {
            eng.schedule_at(at_ticks(t), Ev::Tick);
            t += tick;
        }
        for (idx, o) in script.outages.iter().enumerate() {
            eng.schedule_at(at_ticks(o.start.value()), Ev::OutageStart { idx });
            eng.schedule_at(at_ticks(o.end().value()), Ev::OutageEnd { idx });
        }
        for r in &script.restarts {
            eng.schedule_at(at_ticks(r.value()), Ev::Restart);
        }
        for (idx, c) in script.churn.iter().enumerate() {
            eng.schedule_at(at_ticks(c.at.value()), Ev::Churn { idx });
        }

        // Pool state.
        let mut free = self.pool;
        let mut queues: Vec<Vec<Waiter>> = vec![Vec::new(); self.cfg.titles];
        let mut total_queued = 0usize;

        // In-flight broadcast sessions per slot, for outage repair.
        let mut active: Vec<Vec<BroadcastSession>> = vec![Vec::new(); self.cfg.hot_slots];

        // Outcome accumulators.
        let mut latencies: Vec<f64> = Vec::new();
        let mut served_broadcast = 0usize;
        let mut served_pool = 0usize;
        let mut defected = 0usize;
        let mut rejected = 0usize;
        let mut deferred = 0usize;
        let mut swaps_planned = 0usize;
        let mut swaps_committed = 0usize;
        let mut res = ResilienceOutcome::default();

        let video_length = self.video_length.value();
        let d1 = self.d1.value();
        let pool = self.pool;
        let batch = self.cfg.batch;
        let policy_label = degradation.label();

        // Purge reneged waiters, then serve batches while channels and
        // candidates last. Defined as a closure-shaped helper so both
        // Arrive and PoolDone share it.
        let dispatch = |eng: &mut Engine<Ev>,
                        now: f64,
                        free: &mut usize,
                        queues: &mut Vec<Vec<Waiter>>,
                        total_queued: &mut usize,
                        served_pool: &mut usize,
                        defected: &mut usize,
                        latencies: &mut Vec<f64>,
                        rec: &mut dyn Recorder| {
            for q in queues.iter_mut() {
                let before = q.len();
                q.retain(|w| w.deadline >= now);
                let gone = before - q.len();
                if gone > 0 {
                    *total_queued -= gone;
                    *defected += gone;
                    rec.incr(
                        "control_defections_total",
                        &[("class", "pool")],
                        gone as u64,
                    );
                }
            }
            while *free > 0 {
                let views: Vec<Vec<Pending>> = queues
                    .iter()
                    .map(|q| {
                        q.iter()
                            .map(|w| Pending {
                                arrival: Minutes(w.arrival),
                            })
                            .collect()
                    })
                    .collect();
                let Some(v) = batch.choose(&views) else { break };
                let q = core::mem::take(&mut queues[v]);
                *total_queued -= q.len();
                *free -= 1;
                let vl = v.to_string();
                rec.incr("control_batches_total", &[("video", &vl)], 1);
                for w in q {
                    let wait = now - w.arrival;
                    *served_pool += 1;
                    latencies.push(wait);
                    rec.observe("control_latency_minutes", &[("class", "pool")], wait);
                }
                eng.schedule_at(
                    Ticks::ZERO + scale.duration_from_minutes(Minutes(now + video_length)),
                    Ev::PoolDone,
                );
            }
        };

        eng.run(|eng, at, ev| {
            let engine_now = scale.minutes(TickDuration(at.0)).value();
            match ev {
                Ev::Arrive { idx, attempt } => {
                    let r = &requests[idx];
                    let fresh = attempt == 0;
                    // Fresh arrivals use the exact arrival time; retries
                    // use the (tick-rounded) engine clock.
                    let now = if fresh { r.at.value() } else { engine_now };
                    let matured = alloc.commit_matured(Minutes(now)).len();
                    if matured > 0 {
                        swaps_committed += matured;
                        rec.incr(
                            "control_reallocations_total",
                            &[("kind", "committed")],
                            matured as u64,
                        );
                    }
                    if fresh {
                        est.observe(r.at, r.video);
                        let vl = r.video.to_string();
                        rec.incr("control_requests_total", &[("video", &vl)], 1);
                    }
                    let deadline = r.at.value() + r.patience.value();
                    if let Some(slot) = alloc.slot_of(r.video) {
                        // Broadcast service: wait for the slot's next
                        // first-fragment cycle — slipping whole cycles
                        // past burst-lost first fragments, boundedly.
                        let mut start = now + alloc.wait_for(slot, Minutes(now)).value();
                        let mut slips = 0u64;
                        while slips < MAX_SLIPS
                            && script.bursts.iter().any(|b| {
                                start >= b.start.value()
                                    && start < b.end().value()
                                    && b.loss.is_lost(slot, (start / d1) as u64)
                            })
                        {
                            start += d1;
                            slips += 1;
                        }
                        if slips > 0 {
                            rec.incr("resilience_burst_slips_total", &[], slips);
                        }
                        if start > deadline {
                            defected += 1;
                            rec.incr("control_defections_total", &[("class", "broadcast")], 1);
                        } else {
                            let wait = start - r.at.value();
                            served_broadcast += 1;
                            latencies.push(wait);
                            rec.observe("control_latency_minutes", &[("class", "broadcast")], wait);
                            active[slot].push(BroadcastSession {
                                start,
                                end: start + video_length,
                            });
                        }
                    } else if now > deadline {
                        // A retry that outlived its patience.
                        defected += 1;
                        rec.incr("control_defections_total", &[("class", "pool")], 1);
                    } else {
                        if fresh && alloc.slot_of_any(r.video).is_some() {
                            // Hot but dark: redirected to the pool.
                            res.redirected += 1;
                            rec.incr("resilience_redirected_total", &[], 1);
                        }
                        match adm.decide(pool - free, total_queued, pool, attempt) {
                            AdmissionDecision::Admit => {
                                let w = Waiter {
                                    arrival: r.at.value(),
                                    deadline,
                                };
                                // Keep the queue sorted by arrival so FCFS
                                // sees the true head even after retries.
                                let pos =
                                    queues[r.video].partition_point(|x| x.arrival <= w.arrival);
                                queues[r.video].insert(pos, w);
                                total_queued += 1;
                                dispatch(
                                    eng,
                                    now,
                                    &mut free,
                                    &mut queues,
                                    &mut total_queued,
                                    &mut served_pool,
                                    &mut defected,
                                    &mut latencies,
                                    rec,
                                );
                            }
                            AdmissionDecision::Defer(delay) => {
                                let retry_at = now + delay.value();
                                if retry_at < deadline {
                                    deferred += 1;
                                    res.retries += 1;
                                    rec.incr("control_deferrals_total", &[], 1);
                                    eng.schedule_at(
                                        at_ticks(retry_at),
                                        Ev::Arrive {
                                            idx,
                                            attempt: attempt + 1,
                                        },
                                    );
                                } else {
                                    rejected += 1;
                                    rec.incr("control_rejected_total", &[], 1);
                                }
                            }
                            AdmissionDecision::Reject => {
                                if attempt > 0 {
                                    // Backoff budget exhausted, not a
                                    // plain over-ceiling turn-away.
                                    res.backoff_rejects += 1;
                                    rec.incr("resilience_backoff_rejects_total", &[], 1);
                                }
                                rejected += 1;
                                rec.incr("control_rejected_total", &[], 1);
                            }
                        }
                    }
                }
                Ev::PoolDone => {
                    free += 1;
                    dispatch(
                        eng,
                        engine_now,
                        &mut free,
                        &mut queues,
                        &mut total_queued,
                        &mut served_pool,
                        &mut defected,
                        &mut latencies,
                        rec,
                    );
                }
                Ev::Tick => {
                    let now = Minutes(engine_now);
                    let matured = alloc.commit_matured(now).len();
                    if matured > 0 {
                        swaps_committed += matured;
                        rec.incr(
                            "control_reallocations_total",
                            &[("kind", "committed")],
                            matured as u64,
                        );
                    }
                    if policy == ControlPolicy::Dynamic {
                        let planned = alloc.plan(now, est.scores()).len();
                        if planned > 0 {
                            swaps_planned += planned;
                            rec.incr(
                                "control_reallocations_total",
                                &[("kind", "planned")],
                                planned as u64,
                            );
                        }
                    }
                    rec.gauge_max("control_peak_queue_depth", &[], total_queued as f64);
                    rec.gauge_max("control_peak_pool_busy", &[], (pool - free) as f64);
                }
                Ev::OutageStart { idx } => {
                    let o = &script.outages[idx];
                    let now = engine_now;
                    res.outages += 1;
                    res.reallocations += 1;
                    rec.incr("resilience_outages_total", &[], 1);
                    if alloc.out_of_service(o.channel).is_some() {
                        // A swap in flight on the failed slot is aborted.
                        res.reallocations += 1;
                        rec.incr(
                            "control_reallocations_total",
                            &[("kind", "outage-cancelled")],
                            1,
                        );
                    }
                    // Repair every in-flight session the dark window cuts
                    // into: the lost delivery time is resolved per the
                    // degradation policy, and the session still completes.
                    let o_start = o.start.value();
                    let o_end = o.end().value();
                    active[o.channel].retain(|s| s.end > now);
                    for s in &mut active[o.channel] {
                        let overlap = (s.end.min(o_end) - s.start.max(o_start)).max(0.0);
                        if overlap <= 0.0 {
                            continue;
                        }
                        res.repaired_sessions += 1;
                        rec.incr("resilience_repaired_sessions_total", &[], 1);
                        match degradation {
                            Degradation::Stall => {
                                s.end += overlap;
                                res.stall_minutes += overlap;
                                rec.observe(
                                    "resilience_stall_minutes",
                                    &[("policy", policy_label)],
                                    overlap,
                                );
                            }
                            Degradation::SkipSegment => {
                                res.skipped_minutes += overlap;
                                rec.observe(
                                    "resilience_skipped_minutes",
                                    &[("policy", policy_label)],
                                    overlap,
                                );
                            }
                            Degradation::QualityDrop => {
                                let half = overlap / 2.0;
                                s.end += half;
                                res.stall_minutes += half;
                                res.degraded_minutes += half;
                                rec.observe(
                                    "resilience_stall_minutes",
                                    &[("policy", policy_label)],
                                    half,
                                );
                                rec.observe(
                                    "resilience_degraded_minutes",
                                    &[("policy", policy_label)],
                                    half,
                                );
                            }
                        }
                    }
                }
                Ev::OutageEnd { idx } => {
                    let o = &script.outages[idx];
                    alloc.restore(o.channel, Minutes(engine_now));
                    res.reallocations += 1;
                    rec.incr("control_reallocations_total", &[("kind", "restored")], 1);
                }
                Ev::Restart => {
                    let cancelled = alloc.cancel_all_pending();
                    est = PopularityEstimator::new(self.cfg.titles, self.cfg.half_life);
                    res.restarts += 1;
                    res.reallocations += cancelled;
                    rec.incr("resilience_restarts_total", &[], 1);
                    if cancelled > 0 {
                        rec.incr(
                            "control_reallocations_total",
                            &[("kind", "restart-cancelled")],
                            cancelled as u64,
                        );
                    }
                }
                Ev::Churn { idx } => {
                    let c = &script.churn[idx];
                    let mut rng = SmallRng::seed_from_u64(c.seed);
                    let mut gone = 0usize;
                    // Queues are walked in title order, waiters in arrival
                    // order: the draw sequence is deterministic.
                    for q in queues.iter_mut() {
                        let before = q.len();
                        q.retain(|_| rng.gen::<f64>() >= c.fraction);
                        gone += before - q.len();
                    }
                    if gone > 0 {
                        total_queued -= gone;
                        defected += gone;
                        res.churned += gone;
                        rec.incr("resilience_churned_total", &[], gone as u64);
                        rec.incr(
                            "control_defections_total",
                            &[("class", "churn")],
                            gone as u64,
                        );
                    }
                }
            }
        });

        // Every queue drains before the agenda does: a busy channel always
        // has a PoolDone ahead, and each PoolDone re-dispatches.
        debug_assert_eq!(total_queued, 0, "waiters left queued after exhaustion");
        defected += total_queued; // defensive: account for them anyway

        let stats = eng.stats();
        rec.incr(
            "engine_events_total",
            &[("kind", "scheduled")],
            stats.scheduled,
        );
        rec.incr("engine_events_total", &[("kind", "fired")], stats.fired);
        rec.incr(
            "engine_events_total",
            &[("kind", "cancelled")],
            stats.cancelled,
        );

        latencies.sort_by(f64::total_cmp);
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let pct = |p: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                let i = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
                latencies[i - 1]
            }
        };

        let report = ControlReport {
            policy,
            requests: requests.len(),
            served_broadcast,
            served_pool,
            defected,
            rejected,
            deferred,
            swaps_planned,
            swaps_committed,
            mean_latency: Minutes(mean),
            p95_latency: Minutes(pct(0.95)),
            worst_latency: Minutes(latencies.last().copied().unwrap_or(0.0)),
            final_hot: alloc.hot_videos(),
            broadcast_channels: self.broadcast_channels,
            pool_channels: self.pool,
            cycle: self.d1,
            resilience: res,
        };
        Ok((report, latencies, est.scores().to_vec(), stats))
    }

    /// Execute `cfg` under `policy` — the single entry point subsuming
    /// the deprecated `run` / `run_with_faults` variants and adding
    /// partitioned scale-out.
    ///
    /// With `shards(1)` (the default) this is exactly the historical
    /// single-server run, bit for bit. With `shards(S)` the title space
    /// is partitioned across `S` sub-servers — broadcast slot `i` goes to
    /// shard `i % S`, cold titles by the seeded [`shard_of`] hash unless
    /// the config's `partition` slot covers them (a scenario's region
    /// table then keeps each region's cold tail on its region's shard) —
    /// each
    /// with `hot_slots / S`-proportional bandwidth, its own allocator,
    /// estimator, admission control and batching pool, run concurrently
    /// on the deterministic pool and merged in shard order. The sharded
    /// run is a *partitioned system model* (each shard batches and
    /// admits over its own pool), so its report differs from `shards(1)`
    /// by design; for a fixed `S` it is byte-identical for every thread
    /// count.
    ///
    /// Slot semantics: the `recorder` slot receives the per-shard metric
    /// streams replayed in shard order; the `sink` slot is ignored (the
    /// control plane produces no session traces); the `faults` slot
    /// carries a [`ControlFaults`] bundle — outages are routed to the
    /// owning shard, restarts and churn waves reach every shard, and
    /// burst-loss episodes apply to each shard's local slot indices.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] on an invalid fault script, an
    /// outage naming a missing slot, or `shards` exceeding `hot_slots`;
    /// sizing errors if a shard's bandwidth share cannot sustain its
    /// broadcast half plus a non-empty pool.
    pub fn execute<F: IntoControlFaults>(
        &self,
        policy: ControlPolicy,
        cfg: RunConfig<'_, WorkloadRequest, F>,
    ) -> Result<ControlOutcome> {
        let RunParts {
            requests,
            sink: _,
            recorder,
            faults,
            shards,
            threads,
            seed,
            agenda,
            partition,
            checkpoint_every: _,
        } = cfg.into_parts();
        let quiet = FaultScript::none();
        let (script, degradation) = match &faults {
            Some(f) => f.resolve(&quiet),
            None => (&quiet, Degradation::Stall),
        };
        if shards == 1 {
            let mut reg = Registry::new();
            let (report, _, scores, stats) = match recorder {
                Some(user) => {
                    let mut tee = TeeRecorder {
                        a: &mut reg,
                        b: user,
                    };
                    self.run_faults_core(requests, policy, script, degradation, &mut tee, agenda)?
                }
                None => {
                    self.run_faults_core(requests, policy, script, degradation, &mut reg, agenda)?
                }
            };
            return Ok(ControlOutcome {
                summary: report,
                shard_peak_agenda: vec![stats.peak_agenda],
                stats,
                snapshot: reg.snapshot(),
                popularity: scores,
            });
        }
        self.execute_sharded(
            policy,
            requests,
            recorder,
            (shards, threads, seed, agenda, partition),
            script,
            degradation,
        )
    }

    /// The partitioned path behind [`ControlledSim::execute`];
    /// `(shards, threads, seed, agenda, partition)` are the scale-out
    /// and backend knobs off the [`RunConfig`] plus its scenario slot
    /// (the cold-title owning-shard table).
    #[allow(clippy::too_many_lines)]
    fn execute_sharded(
        &self,
        policy: ControlPolicy,
        requests: &[WorkloadRequest],
        recorder: Option<&mut dyn Recorder>,
        (shards, threads, seed, agenda, partition): (
            usize,
            usize,
            u64,
            AgendaKind,
            Option<&[usize]>,
        ),
        script: &FaultScript,
        degradation: Degradation,
    ) -> Result<ControlOutcome> {
        let m = self.cfg.hot_slots;
        if shards > m {
            return Err(SchemeError::InvalidConfig {
                what: "more shards than broadcast slots",
            });
        }
        script.validate()?;
        if script.outages.iter().any(|o| o.channel >= m) {
            return Err(SchemeError::InvalidConfig {
                what: "fault script outage names a broadcast slot the config does not have",
            });
        }

        // Partition the title space. Broadcast slot (= hot title) `i`
        // goes to shard `i % S` and, because titles are visited in
        // ascending order, lands on local ids `0..k_s` — exactly the
        // sub-server's initial hot set. Cold titles follow the scenario
        // slot's owning-shard table when it covers them, otherwise the
        // seeded `shard_of` hash; hot slots must stay `i % S` because the
        // sub-server bandwidth shares are sized off that stride.
        let mut titles_of: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut local_of: Vec<(usize, usize)> = Vec::with_capacity(self.cfg.titles);
        for t in 0..self.cfg.titles {
            let s = if t < m {
                t % shards
            } else {
                match partition.and_then(|map| map.get(t)) {
                    Some(&owner) => owner % shards,
                    None => shard_of(t as u64, seed, shards),
                }
            };
            local_of.push((s, titles_of[s].len()));
            titles_of[s].push(t);
        }

        // Size the sub-servers: shard `s` owns `k_s` of the `m` slots
        // and gets the proportional bandwidth share, so its per-video
        // broadcast bandwidth — and with it `D₁` — matches the whole
        // server's.
        let mut sims = Vec::with_capacity(shards);
        for (s, shard_titles) in titles_of.iter().enumerate() {
            let k_s = (0..m).filter(|i| i % shards == s).count();
            let cfg_s = ControlConfig {
                titles: shard_titles.len(),
                hot_slots: k_s,
                total_bandwidth: Mbps(self.cfg.total_bandwidth.value() * (k_s as f64 / m as f64)),
                ..self.cfg
            };
            sims.push(Self::sized(cfg_s, self.video_length, self.display_rate)?);
        }

        // Route requests and outages to the owning shard; restarts and
        // churn waves are server-wide and reach every shard.
        let mut shard_reqs: Vec<Vec<WorkloadRequest>> = vec![Vec::new(); shards];
        for r in requests {
            let (s, local) = local_of[r.video];
            shard_reqs[s].push(WorkloadRequest { video: local, ..*r });
        }
        let mut scripts: Vec<FaultScript> = (0..shards)
            .map(|_| FaultScript {
                restarts: script.restarts.clone(),
                bursts: script.bursts.clone(),
                churn: script.churn.clone(),
                ..FaultScript::none()
            })
            .collect();
        for o in &script.outages {
            let mut routed = *o;
            routed.channel = o.channel / shards;
            scripts[o.channel % shards].outages.push(routed);
        }

        let want_ops = recorder.is_some();
        let inputs: Vec<usize> = (0..shards).collect();
        let mut outs: Vec<ShardOut> = parallel_map(threads, "control-shards", &inputs, |_, &s| {
            let mut reg = Registry::new();
            let mut ops = want_ops.then(OpLog::new);
            let result = match ops.as_mut() {
                Some(log) => {
                    let mut tee = TeeRecorder {
                        a: &mut reg,
                        b: log,
                    };
                    sims[s].run_faults_core(
                        &shard_reqs[s],
                        policy,
                        &scripts[s],
                        degradation,
                        &mut tee,
                        agenda,
                    )
                }
                None => sims[s].run_faults_core(
                    &shard_reqs[s],
                    policy,
                    &scripts[s],
                    degradation,
                    &mut reg,
                    agenda,
                ),
            };
            match result {
                Ok((report, latencies, scores, stats)) => ShardOut {
                    report: Some(report),
                    latencies,
                    scores,
                    stats,
                    snapshot: reg.snapshot(),
                    ops,
                    err: None,
                },
                Err(e) => ShardOut {
                    report: None,
                    latencies: Vec::new(),
                    scores: Vec::new(),
                    stats: EngineStats::default(),
                    snapshot: reg.snapshot(),
                    ops,
                    err: Some(e),
                },
            }
        });
        for out in &mut outs {
            if let Some(e) = out.err.take() {
                return Err(e);
            }
        }

        // Merge, in shard order throughout. Counters add; the latency
        // population concatenates and re-sorts; every shard replayed the
        // same restart epochs, so that one counter takes the max rather
        // than the sum.
        let mut latencies: Vec<f64> = Vec::new();
        let mut summary = ControlReport {
            policy,
            requests: requests.len(),
            served_broadcast: 0,
            served_pool: 0,
            defected: 0,
            rejected: 0,
            deferred: 0,
            swaps_planned: 0,
            swaps_committed: 0,
            mean_latency: Minutes(0.0),
            p95_latency: Minutes(0.0),
            worst_latency: Minutes(0.0),
            final_hot: vec![0; m],
            broadcast_channels: 0,
            pool_channels: 0,
            cycle: sims[0].d1,
            resilience: ResilienceOutcome::default(),
        };
        let mut stats = EngineStats::default();
        let mut shard_peak_agenda = Vec::with_capacity(shards);
        let mut snapshot = Snapshot::default();
        for out in &outs {
            let r = out.report.as_ref().expect("errors returned above");
            summary.served_broadcast += r.served_broadcast;
            summary.served_pool += r.served_pool;
            summary.defected += r.defected;
            summary.rejected += r.rejected;
            summary.deferred += r.deferred;
            summary.swaps_planned += r.swaps_planned;
            summary.swaps_committed += r.swaps_committed;
            summary.broadcast_channels += r.broadcast_channels;
            summary.pool_channels += r.pool_channels;
            let res = &mut summary.resilience;
            res.outages += r.resilience.outages;
            res.reallocations += r.resilience.reallocations;
            res.repaired_sessions += r.resilience.repaired_sessions;
            res.redirected += r.resilience.redirected;
            res.retries += r.resilience.retries;
            res.backoff_rejects += r.resilience.backoff_rejects;
            res.churned += r.resilience.churned;
            res.restarts = res.restarts.max(r.resilience.restarts);
            res.stall_minutes += r.resilience.stall_minutes;
            res.skipped_minutes += r.resilience.skipped_minutes;
            res.degraded_minutes += r.resilience.degraded_minutes;
            latencies.extend_from_slice(&out.latencies);
            stats.scheduled += out.stats.scheduled;
            stats.fired += out.stats.fired;
            stats.cancelled += out.stats.cancelled;
            stats.compactions += out.stats.compactions;
            stats.peak_agenda = stats.peak_agenda.max(out.stats.peak_agenda);
            shard_peak_agenda.push(out.stats.peak_agenda);
            snapshot.merge(&out.snapshot);
        }
        for (i, slot) in summary.final_hot.iter_mut().enumerate() {
            let s = i % shards;
            let local_hot = out_report(&outs, s).final_hot[i / shards];
            *slot = titles_of[s][local_hot];
        }

        latencies.sort_by(f64::total_cmp);
        summary.mean_latency = Minutes(if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        });
        summary.p95_latency = Minutes(if latencies.is_empty() {
            0.0
        } else {
            let i = ((latencies.len() as f64 * 0.95).ceil() as usize).clamp(1, latencies.len());
            latencies[i - 1]
        });
        summary.worst_latency = Minutes(latencies.last().copied().unwrap_or(0.0));

        let mut popularity = vec![0.0; self.cfg.titles];
        for (t, score) in popularity.iter_mut().enumerate() {
            let (s, local) = local_of[t];
            *score = outs[s].scores[local];
        }

        if let Some(rec) = recorder {
            for out in &outs {
                if let Some(log) = &out.ops {
                    log.replay(rec);
                }
            }
        }

        Ok(ControlOutcome {
            summary,
            stats,
            shard_peak_agenda,
            snapshot,
            popularity,
        })
    }
}

/// Shard `s`'s report, post-error-check.
fn out_report(outs: &[ShardOut], s: usize) -> &ControlReport {
    outs[s].report.as_ref().expect("errors returned above")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_resilience::{ChannelOutage, ChurnEvent};
    use sb_workload::{Patience, PoissonArrivals, PopularityShift, ZipfPopularity};

    fn shifted_workload(
        titles: usize,
        rate: f64,
        horizon: f64,
        shift_at: f64,
        rotate: usize,
        seed: u64,
    ) -> Vec<WorkloadRequest> {
        PopularityShift {
            arrivals: PoissonArrivals::new(rate, seed)
                .with_patience(Patience::Exponential(Minutes(30.0))),
            shift_at: Minutes(shift_at),
            rotate,
        }
        .generate(&ZipfPopularity::paper(titles), Minutes(horizon))
    }

    fn sim(bandwidth: f64) -> ControlledSim {
        let cfg = ControlConfig::paper_defaults(Mbps(bandwidth));
        let catalog = Catalog::paper_defaults(cfg.titles);
        ControlledSim::new(cfg, &catalog).unwrap()
    }

    fn exec(sim: &ControlledSim, reqs: &[WorkloadRequest], policy: ControlPolicy) -> ControlReport {
        sim.execute(policy, RunConfig::new(reqs)).unwrap().summary
    }

    fn exec_faults(
        sim: &ControlledSim,
        reqs: &[WorkloadRequest],
        policy: ControlPolicy,
        script: &FaultScript,
        degradation: Degradation,
    ) -> Result<ControlReport> {
        Ok(sim
            .execute(
                policy,
                RunConfig::new(reqs).faults(ControlFaults {
                    script,
                    degradation,
                }),
            )?
            .summary)
    }

    #[test]
    fn accounting_adds_up_under_both_policies() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 3.0, 400.0, 200.0, 13, 5);
        for policy in [ControlPolicy::Static, ControlPolicy::Dynamic] {
            let report = exec(&sim, &reqs, policy);
            assert_eq!(report.accounted(), reqs.len(), "{policy}");
            assert!(
                report.resilience.is_quiet(),
                "fault-free run took recovery actions"
            );
        }
    }

    #[test]
    fn static_policy_never_reallocates() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 3.0, 400.0, 200.0, 13, 7);
        let report = exec(&sim, &reqs, ControlPolicy::Static);
        assert_eq!(report.swaps_planned, 0);
        assert_eq!(report.swaps_committed, 0);
        assert_eq!(report.final_hot, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_policy_tracks_the_shift() {
        let sim = sim(300.0);
        // Rotate the head of the Zipf right out of the initial hot set.
        let reqs = shifted_workload(40, 6.0, 500.0, 120.0, 20, 11);
        let report = exec(&sim, &reqs, ControlPolicy::Dynamic);
        assert!(report.swaps_committed > 0, "no swaps committed");
        // The post-shift favourites are ranks 20.. (old rank r now arrives
        // as (r + 20) % 40); the final hot set should have moved there.
        let moved = report
            .final_hot
            .iter()
            .filter(|&&v| (20..28).contains(&v))
            .count();
        assert!(moved >= 4, "final hot set {:?}", report.final_hot);
    }

    #[test]
    fn broadcast_wait_never_exceeds_the_cycle() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 4.0, 300.0, 150.0, 10, 3);
        for policy in [ControlPolicy::Static, ControlPolicy::Dynamic] {
            let snap = sim.execute(policy, RunConfig::new(&reqs)).unwrap().snapshot;
            let h = snap
                .histogram("control_latency_minutes", "class=broadcast")
                .expect("broadcast latency recorded");
            // Broadcast waits are bounded by D₁ (fresh arrivals); only
            // deferred pool arrivals could see more, and they are class=pool.
            assert!(h.count > 0);
            assert!(
                h.sum / h.count as f64 <= sim.cycle().value(),
                "mean broadcast wait above the cycle bound"
            );
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        let sim = sim(240.0);
        let reqs = shifted_workload(40, 5.0, 300.0, 150.0, 15, 29);
        let a = sim
            .execute(ControlPolicy::Dynamic, RunConfig::new(&reqs))
            .unwrap();
        let b = sim
            .execute(ControlPolicy::Dynamic, RunConfig::new(&reqs))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn admission_rejects_under_overload() {
        let cfg = ControlConfig {
            admission_ceiling: 1.5,
            ..ControlConfig::paper_defaults(Mbps(200.0))
        };
        let catalog = Catalog::paper_defaults(cfg.titles);
        let sim = ControlledSim::new(cfg, &catalog).unwrap();
        // Patient viewers + heavy load: queues build until the ceiling.
        let reqs = PoissonArrivals::new(8.0, 17)
            .with_patience(Patience::Infinite)
            .generate(&ZipfPopularity::paper(40), Minutes(400.0));
        let report = exec(&sim, &reqs, ControlPolicy::Static);
        assert!(report.rejected > 0, "ceiling never triggered");
        assert_eq!(report.accounted(), reqs.len());
    }

    #[test]
    fn deferral_retries_instead_of_rejecting() {
        let cfg = ControlConfig {
            admission_ceiling: 1.5,
            admission_retry: Some(Backoff::fixed(Minutes(5.0)).unwrap()),
            ..ControlConfig::paper_defaults(Mbps(200.0))
        };
        let catalog = Catalog::paper_defaults(cfg.titles);
        let sim = ControlledSim::new(cfg, &catalog).unwrap();
        let reqs = PoissonArrivals::new(8.0, 17)
            .with_patience(Patience::Exponential(Minutes(40.0)))
            .generate(&ZipfPopularity::paper(40), Minutes(400.0));
        let report = exec(&sim, &reqs, ControlPolicy::Static);
        assert!(report.deferred > 0, "no deferrals issued");
        assert_eq!(report.accounted(), reqs.len());
    }

    #[test]
    fn bounded_backoff_rejects_after_the_attempt_budget() {
        let cfg = ControlConfig {
            admission_ceiling: 1.2,
            admission_retry: Some(Backoff::new(Minutes(2.0), 2.0, 3).unwrap()),
            ..ControlConfig::paper_defaults(Mbps(200.0))
        };
        let catalog = Catalog::paper_defaults(cfg.titles);
        let sim = ControlledSim::new(cfg, &catalog).unwrap();
        // Very patient viewers: the only way out of a full pool is the
        // backoff budget running dry.
        let reqs = PoissonArrivals::new(10.0, 23)
            .with_patience(Patience::Infinite)
            .generate(&ZipfPopularity::paper(40), Minutes(400.0));
        let report = exec_faults(
            &sim,
            &reqs,
            ControlPolicy::Static,
            &FaultScript::none(),
            Degradation::Stall,
        )
        .unwrap();
        assert!(report.resilience.retries > 0, "no backoff retries");
        assert!(
            report.resilience.backoff_rejects > 0,
            "attempt cap never reached"
        );
        assert_eq!(report.accounted(), reqs.len());
    }

    #[test]
    fn invalid_configs_error_instead_of_panicking() {
        let catalog = Catalog::paper_defaults(40);
        let bad_slots = ControlConfig {
            hot_slots: 0,
            ..ControlConfig::paper_defaults(Mbps(300.0))
        };
        assert!(ControlledSim::new(bad_slots, &catalog).is_err());
        let bad_tick = ControlConfig {
            tick: Minutes(0.0),
            ..ControlConfig::paper_defaults(Mbps(300.0))
        };
        assert!(ControlledSim::new(bad_tick, &catalog).is_err());
        let bad_fraction = ControlConfig {
            broadcast_fraction: 1.5,
            ..ControlConfig::paper_defaults(Mbps(300.0))
        };
        assert!(ControlledSim::new(bad_fraction, &catalog).is_err());
    }

    #[test]
    fn outage_redirects_arrivals_and_repairs_sessions() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 6.0, 400.0, 200.0, 13, 5);
        let script = FaultScript {
            outages: vec![ChannelOutage {
                channel: 0,
                start: Minutes(100.0),
                duration: Minutes(60.0),
            }],
            ..FaultScript::none()
        };
        for policy in [ControlPolicy::Static, ControlPolicy::Dynamic] {
            let report = exec_faults(&sim, &reqs, policy, &script, Degradation::Stall).unwrap();
            assert_eq!(report.accounted(), reqs.len(), "{policy}");
            assert_eq!(report.resilience.outages, 1);
            assert!(
                report.resilience.redirected > 0,
                "{policy}: nobody redirected"
            );
            assert!(
                report.resilience.repaired_sessions > 0,
                "{policy}: no sessions repaired"
            );
            assert!(report.resilience.stall_minutes > 0.0);
        }
    }

    #[test]
    fn degradation_policies_fill_their_own_ledgers() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 6.0, 400.0, 200.0, 13, 5);
        let script = FaultScript {
            outages: vec![ChannelOutage {
                channel: 1,
                start: Minutes(120.0),
                duration: Minutes(45.0),
            }],
            ..FaultScript::none()
        };
        let run = |d: Degradation| {
            exec_faults(&sim, &reqs, ControlPolicy::Static, &script, d)
                .unwrap()
                .resilience
        };
        let stall = run(Degradation::Stall);
        assert!(stall.stall_minutes > 0.0 && stall.skipped_minutes == 0.0);
        let skip = run(Degradation::SkipSegment);
        assert!(skip.skipped_minutes > 0.0 && skip.stall_minutes == 0.0);
        let quality = run(Degradation::QualityDrop);
        assert!(quality.stall_minutes > 0.0 && quality.degraded_minutes > 0.0);
        // Same faults, same repairs — only the resolution differs.
        assert_eq!(stall.repaired_sessions, skip.repaired_sessions);
        assert!((skip.skipped_minutes - stall.stall_minutes).abs() < 1e-9);
        assert!((quality.stall_minutes - stall.stall_minutes / 2.0).abs() < 1e-9);
    }

    #[test]
    fn churn_defects_a_seeded_fraction_of_waiters() {
        let cfg = ControlConfig {
            admission_ceiling: 5.0,
            ..ControlConfig::paper_defaults(Mbps(200.0))
        };
        let catalog = Catalog::paper_defaults(cfg.titles);
        let sim = ControlledSim::new(cfg, &catalog).unwrap();
        let reqs = PoissonArrivals::new(8.0, 17)
            .with_patience(Patience::Infinite)
            .generate(&ZipfPopularity::paper(40), Minutes(300.0));
        let script = FaultScript {
            churn: vec![ChurnEvent {
                at: Minutes(150.0),
                fraction: 0.5,
                seed: 9,
            }],
            ..FaultScript::none()
        };
        let report = exec_faults(
            &sim,
            &reqs,
            ControlPolicy::Static,
            &script,
            Degradation::Stall,
        )
        .unwrap();
        assert!(report.resilience.churned > 0, "nobody churned");
        assert_eq!(report.accounted(), reqs.len());
        // Deterministic: same script, same churn.
        let again = exec_faults(
            &sim,
            &reqs,
            ControlPolicy::Static,
            &script,
            Degradation::Stall,
        )
        .unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn restart_resets_the_estimator_and_cancels_swaps() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 6.0, 500.0, 120.0, 20, 11);
        let script = FaultScript {
            restarts: vec![Minutes(130.0)],
            ..FaultScript::none()
        };
        let report = exec_faults(
            &sim,
            &reqs,
            ControlPolicy::Dynamic,
            &script,
            Degradation::Stall,
        )
        .unwrap();
        assert_eq!(report.resilience.restarts, 1);
        assert_eq!(report.accounted(), reqs.len());
        // Recovery continues after the restart: the shift still gets
        // tracked once the estimator re-learns it.
        assert!(report.swaps_committed > 0);
    }

    #[test]
    fn fault_scripts_are_validated() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 3.0, 100.0, 50.0, 5, 1);
        let bad_slot = FaultScript {
            outages: vec![ChannelOutage {
                channel: 99,
                start: Minutes(10.0),
                duration: Minutes(5.0),
            }],
            ..FaultScript::none()
        };
        assert!(exec_faults(
            &sim,
            &reqs,
            ControlPolicy::Static,
            &bad_slot,
            Degradation::Stall
        )
        .is_err());
        let bad_window = FaultScript {
            outages: vec![ChannelOutage {
                channel: 0,
                start: Minutes(10.0),
                duration: Minutes(0.0),
            }],
            ..FaultScript::none()
        };
        assert!(exec_faults(
            &sim,
            &reqs,
            ControlPolicy::Static,
            &bad_window,
            Degradation::Stall
        )
        .is_err());
    }

    #[test]
    fn heap_and_wheel_backends_match_bitwise_under_faults() {
        // The control plane is the cancel-heavy client: batching timers,
        // admission retries and outage repair all cancel or reschedule.
        // Heap and wheel must agree to the byte, faulted or not.
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 4.0, 300.0, 150.0, 10, 3);
        let script = FaultScript {
            outages: vec![ChannelOutage {
                channel: 2,
                start: Minutes(80.0),
                duration: Minutes(30.0),
            }],
            ..FaultScript::none()
        };
        let heap = sim
            .execute(ControlPolicy::Dynamic, RunConfig::new(&reqs))
            .unwrap();
        let wheel = sim
            .execute(
                ControlPolicy::Dynamic,
                RunConfig::new(&reqs).agenda(AgendaKind::Wheel),
            )
            .unwrap();
        assert_eq!(heap.summary, wheel.summary);
        assert_eq!(heap.snapshot, wheel.snapshot);
        assert_eq!(heap.popularity, wheel.popularity);
        let faulted_heap = sim
            .execute(
                ControlPolicy::Static,
                RunConfig::new(&reqs).faults(ControlFaults {
                    script: &script,
                    degradation: Degradation::SkipSegment,
                }),
            )
            .unwrap();
        let faulted_wheel = sim
            .execute(
                ControlPolicy::Static,
                RunConfig::new(&reqs)
                    .agenda(AgendaKind::Wheel)
                    .faults(ControlFaults {
                        script: &script,
                        degradation: Degradation::SkipSegment,
                    }),
            )
            .unwrap();
        assert_eq!(faulted_heap.summary, faulted_wheel.summary);
        assert_eq!(faulted_heap.snapshot, faulted_wheel.snapshot);
    }

    #[test]
    fn sharded_control_partitions_and_is_thread_invariant() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 5.0, 400.0, 200.0, 13, 5);
        for shards in [2, 4, 8] {
            let base = sim
                .execute(ControlPolicy::Dynamic, RunConfig::new(&reqs).shards(shards))
                .unwrap();
            assert_eq!(base.summary.accounted(), reqs.len(), "S={shards}");
            assert_eq!(base.summary.final_hot.len(), 8);
            assert_eq!(base.popularity.len(), 40);
            assert_eq!(base.shard_peak_agenda.len(), shards);
            // The hot partition keeps every slot owned by a real title.
            let mut hot = base.summary.final_hot.clone();
            hot.sort_unstable();
            hot.dedup();
            assert_eq!(hot.len(), 8, "duplicate titles across shards");
            for threads in [2, 4] {
                let out = sim
                    .execute(
                        ControlPolicy::Dynamic,
                        RunConfig::new(&reqs).shards(shards).threads(threads),
                    )
                    .unwrap();
                assert_eq!(base, out, "S={shards} T={threads} diverged");
            }
        }
    }

    #[test]
    fn sharded_control_routes_faults_to_owning_shards() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 6.0, 400.0, 200.0, 13, 5);
        let script = FaultScript {
            outages: vec![ChannelOutage {
                channel: 5,
                start: Minutes(100.0),
                duration: Minutes(60.0),
            }],
            restarts: vec![Minutes(220.0)],
            ..FaultScript::none()
        };
        let out = sim
            .execute(
                ControlPolicy::Static,
                RunConfig::new(&reqs).shards(4).faults(ControlFaults {
                    script: &script,
                    degradation: Degradation::Stall,
                }),
            )
            .unwrap();
        let res = &out.summary.resilience;
        assert_eq!(res.outages, 1, "outage lands on exactly one shard");
        assert_eq!(res.restarts, 1, "server-wide restart counted once");
        assert_eq!(out.summary.accounted(), reqs.len());
    }

    #[test]
    fn sharding_past_the_slot_count_errors() {
        let sim = sim(300.0);
        let reqs = shifted_workload(40, 3.0, 100.0, 50.0, 5, 1);
        let err = sim
            .execute(ControlPolicy::Static, RunConfig::new(&reqs).shards(16))
            .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }
}
