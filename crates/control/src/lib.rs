//! # Online control plane for the hybrid VoD server
//!
//! The paper's hybrid (§1) decides *offline* which titles get periodic
//! broadcast: the top `m` of a known Zipf ranking. This crate closes the
//! loop online, for a server whose popularity ranking drifts over the day:
//!
//! * [`estimator`] — sliding-window popularity estimation from the
//!   observed request stream (exponentially-decayed counts),
//! * [`allocator`] — hysteretic, drain-safe reassignment of skyscraper
//!   channel groups toward the current top titles,
//! * [`admission`] — reject/defer control on the batching pool's
//!   projected load,
//! * [`sim`] — [`ControlledSim`], the engine-driven simulation tying the
//!   three together under a [`ControlPolicy`] (Static reproduces the
//!   paper's offline split; Dynamic reallocates online).
//!
//! Everything is deterministic and clock-free, so control experiments are
//! exactly reproducible and metrics snapshots are byte-identical across
//! worker-thread counts.

#![forbid(unsafe_code)]

pub mod admission;
pub mod allocator;
pub mod estimator;
pub mod sim;

pub use admission::{AdmissionControl, AdmissionDecision, Backoff};
pub use allocator::{ChannelAllocator, CommittedSwap, PendingSwap, PlannedSwap, Slot};
pub use estimator::PopularityEstimator;
pub use sim::{
    ControlConfig, ControlFaults, ControlOutcome, ControlPolicy, ControlReport, ControlledSim,
};
