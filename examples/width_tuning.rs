//! §5.4's design exercise: choose the skyscraper width W by
//! cross-examining latency against client storage — "we can control W, or
//! the width of the skyscraper, to achieve the desired combination of
//! storage bandwidth requirement, disk space requirement, and access
//! latency."
//!
//! Run with: `cargo run --example width_tuning`

use skyscraper_broadcasting::core::width::{candidate_widths, latency_for, min_width_for_latency};
use skyscraper_broadcasting::prelude::*;

fn main() {
    let cfg = SystemConfig::paper_defaults(Mbps(600.0));
    let k = Skyscraper::unbounded().channels_per_video(&cfg).unwrap();
    println!(
        "B = {:.0}, so K = {k} channels per video\n",
        cfg.server_bandwidth
    );

    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "W", "latency (min)", "buffer (MB)", "client I/O"
    );
    for w in candidate_widths(k) {
        let width = Width::capped(w).unwrap();
        let m = Skyscraper::with_width(width).metrics(&cfg).unwrap();
        println!(
            "{:>8} {:>14.4} {:>14.1} {:>12.2}",
            w,
            m.access_latency.value(),
            m.buffer_mbytes().value(),
            m.client_io_bandwidth
        );
    }

    // The inverse problem: the operator wants 15-second startup.
    let target = Minutes(0.25);
    let chosen = min_width_for_latency(cfg.video_length, k, target).unwrap();
    let m = Skyscraper::with_width(chosen).metrics(&cfg).unwrap();
    println!(
        "\nsmallest width meeting a {:.2}-min target: {chosen} → latency {:.4}, buffer {:.1}",
        target.value(),
        m.access_latency.value(),
        m.buffer_mbytes()
    );
    assert!(latency_for(cfg.video_length, k, chosen) <= target);

    // And the paper's own pick for this regime.
    println!(
        "\n§5.4: \"if the network-I/O bandwidth is 600 Mbits/sec, each client needs only\n\
         40 MBytes of buffer space in order to enjoy an access latency of about 0.1 minutes\""
    );
    let w52 = Skyscraper::with_width(Width::capped(52).unwrap())
        .metrics(&cfg)
        .unwrap();
    println!(
        "reproduced: W=52 → latency {:.3} min, buffer {:.1} MB",
        w52.access_latency.value(),
        w52.buffer_mbytes().value()
    );
}
