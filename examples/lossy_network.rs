//! Fault injection: what happens to a Skyscraper client when the
//! metropolitan network drops whole broadcasts. The scheme has no
//! retransmission — a lost broadcast means waiting a full fragment period
//! for the next one — so stalls grow sharply with the loss rate.
//!
//! Run with: `cargo run --example lossy_network`

use skyscraper_broadcasting::prelude::*;
use skyscraper_broadcasting::sim::faults::{apply_losses, jitter_free_with_stalls, LossModel};

fn main() {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let scheme = Skyscraper::with_width(Width::capped(52).unwrap());
    let plan = scheme.plan(&cfg).unwrap();

    let session = schedule_client(
        &plan,
        VideoId(0),
        Minutes(3.7),
        cfg.display_rate,
        ClientPolicy::LatestFeasible,
    )
    .unwrap()
    .trace();

    println!(
        "{:>12} {:>10} {:>16} {:>18}",
        "drop chance", "stalls", "total stall (min)", "still consistent?"
    );
    for pct in [0.0, 0.01, 0.05, 0.10, 0.20] {
        // Average over seeds for a stable picture.
        let mut stalls = 0usize;
        let mut stall_time = 0.0;
        let mut consistent = true;
        let seeds = 25;
        for seed in 0..seeds {
            let report = apply_losses(
                &plan,
                &session,
                &LossModel::new(pct, seed).expect("valid probability"),
            );
            stalls += report.stalls.len();
            stall_time += report.total_stall().value();
            consistent &= jitter_free_with_stalls(&report, 1e-6);
        }
        println!(
            "{:>11.0}% {:>10.2} {:>16.3} {:>18}",
            pct * 100.0,
            stalls as f64 / seeds as f64,
            stall_time / seeds as f64,
            consistent
        );
    }
    println!("\n(zero loss must mean zero stalls; any repaired schedule must still be");
    println!(" starvation-free once its reported stalls are credited)");
}
