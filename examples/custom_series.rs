//! §6's generalization, exercised: design your own broadcast series, have
//! the two-loader client model certify it, compare it against the paper's
//! series — and let the greedy search rediscover the paper's series as the
//! fastest valid one.
//!
//! Run with: `cargo run --example custom_series`

use skyscraper_broadcasting::core::custom::{
    greedy_max_series, validate_units, CustomSkyscraper, PhaseBudget, ValidatedSeries,
};
use skyscraper_broadcasting::core::series;
use skyscraper_broadcasting::prelude::*;

fn main() {
    let cfg = SystemConfig::paper_defaults(Mbps(150.0)); // K = 10 channels/video
    let budget = PhaseBudget::ExhaustiveUpTo(100_000);

    println!("candidate series for K = 10, D = 120 min:\n");
    let candidates: Vec<(&str, Vec<u64>)> = vec![
        ("paper (skyscraper)", series::series(10)),
        ("gentle arithmetic", vec![1, 2, 2, 3, 3, 4, 4, 5, 5, 6]),
        ("doubling (invalid)", (0..10).map(|i| 1u64 << i).collect()),
        (
            "overgrown (invalid)",
            vec![1, 2, 2, 7, 7, 16, 16, 33, 33, 68],
        ),
    ];

    for (name, units) in &candidates {
        match validate_units(units, budget) {
            Ok(()) => {
                let scheme =
                    CustomSkyscraper::new(ValidatedSeries::new(units.clone(), budget).unwrap());
                let m = scheme.metrics(&cfg).unwrap();
                println!(
                    "{name:22} VALID   latency {:>7.3} min, buffer {:>7.1} MB",
                    m.access_latency.value(),
                    m.buffer_requirement.to_mbytes().value()
                );
            }
            Err(v) => println!("{name:22} INVALID ({v})"),
        }
    }

    println!("\ngreedy search for the fastest two-loader-safe series:");
    let found = greedy_max_series(10, budget);
    println!("  found : {found:?}");
    println!("  paper : {:?}", series::series(10));
    assert_eq!(found, series::series(10));
    println!("  → the paper's series IS the greedy-maximal valid series ✓");
}
