//! Quickstart: design a Skyscraper Broadcasting system for the paper's
//! workload, inspect the plan, and walk one client through a session.
//!
//! Run with: `cargo run --example quickstart`

use skyscraper_broadcasting::prelude::*;

fn main() {
    // The paper's §5 setting: 10 popular 2-hour MPEG-1 videos (1.5 Mb/s)
    // on a server with 300 Mb/s of network-I/O bandwidth.
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));

    // Pick the width W=52 the paper recommends above 200 Mb/s (§5.4).
    let scheme = Skyscraper::with_width(Width::capped(52).expect("52 is a series value"));

    // Analytic metrics: what every client is promised.
    let metrics = scheme.metrics(&cfg).expect("feasible configuration");
    println!("scheme           : {}", BroadcastScheme::name(&scheme));
    println!(
        "channels per video: {}",
        scheme.channels_per_video(&cfg).unwrap()
    );
    println!("worst-case latency: {:.3}", metrics.access_latency);
    println!("client I/O        : {:.2}", metrics.client_io_bandwidth);
    println!(
        "client buffer     : {:.1} ({:.1})",
        metrics.buffer_requirement,
        metrics.buffer_requirement.to_mbytes()
    );

    // Build the concrete broadcast plan the server would run.
    let plan = scheme.plan(&cfg).expect("feasible configuration");
    println!(
        "\nplan: {} logical channels, {:.1} total",
        plan.channels.len(),
        plan.total_bandwidth()
    );

    // A viewer shows up 7.3 minutes after the epoch and asks for video 2.
    let session = schedule_client(
        &plan,
        VideoId(2),
        Minutes(7.3),
        cfg.display_rate,
        ClientPolicy::LatestFeasible,
    )
    .expect("every video in the plan is watchable");

    println!("\nviewer arrives at 7.300 min:");
    println!(
        "  playback starts {:.4} (waited {:.4})",
        session.playback_start,
        session.startup_latency()
    );
    println!(
        "  receives {} fragments on {} concurrent streams at most",
        session.downloads.len(),
        session.max_concurrent_downloads()
    );
    println!(
        "  peak disk buffer {:.1}",
        session.peak_buffer().to_mbytes()
    );
    assert!(
        session.jitter_violations(1e-9).is_empty(),
        "playback is jitter-free"
    );
    println!("  playback verified jitter-free ✓");
}
