//! The metropolitan VoD system of the paper's introduction, end to end:
//! a 60-title catalog with Zipf(θ=0.271) popularity, Poisson arrivals,
//! impatient viewers — the 10 hottest titles on Skyscraper Broadcasting,
//! the tail on an MQL scheduled-multicast pool (§1's hybrid).
//!
//! Run with: `cargo run --example metropolitan`

use skyscraper_broadcasting::batching::{BatchPolicy, HybridConfig};
use skyscraper_broadcasting::prelude::*;
use skyscraper_broadcasting::sim::system::{Request, SystemSim};
use skyscraper_broadcasting::sim::RunConfig;
use skyscraper_broadcasting::workload::{Catalog, Patience, PoissonArrivals, ZipfPopularity};

fn main() {
    let titles = 60;
    let catalog = Catalog::paper_defaults(titles);
    let popularity = ZipfPopularity::paper(titles);

    // Ten hours of evening traffic at 6 requests/minute, viewers with an
    // 8-minute mean patience.
    let requests = PoissonArrivals::new(6.0, 2026)
        .with_patience(Patience::Exponential(Minutes(8.0)))
        .generate(&popularity, Minutes(600.0));
    println!(
        "workload: {} requests over 600 min, {} titles",
        requests.len(),
        titles
    );
    println!(
        "top-10 titles draw {:.1}% of demand (Zipf θ = 0.271)",
        popularity.top_share(10) * 100.0
    );

    let hybrid = HybridConfig {
        total_bandwidth: Mbps(600.0),
        popular: 10,
        width: Width::capped(52).unwrap(),
        policy: BatchPolicy::Mql,
        broadcast_fraction: 0.5,
    };
    let report = hybrid.run(&catalog, &requests).expect("feasible split");

    println!("\n== broadcast half (Skyscraper, 10 titles) ==");
    println!("channels          : {}", report.broadcast_channels);
    println!(
        "worst-case latency: {:.3} — guaranteed, load-independent",
        report.broadcast_worst_latency
    );
    println!("requests served   : {}", report.broadcast_requests);
    println!(
        "viewers too impatient even for that: {} ({:.2}%)",
        report.broadcast_impatient,
        100.0 * report.broadcast_impatient as f64 / report.broadcast_requests.max(1) as f64
    );

    println!("\n== multicast half (MQL batching, 50 titles) ==");
    println!("channels   : {}", report.multicast_channels);
    println!("served     : {}", report.multicast.served);
    println!(
        "reneged    : {} ({:.1}%)",
        report.multicast.reneged,
        report.multicast.renege_rate() * 100.0
    );
    println!("mean wait  : {:.2}", report.multicast.mean_wait);
    println!(
        "mean batch : {:.2} viewers per stream",
        report.multicast.mean_batch_size
    );

    // Drive actual broadcast clients for the hot half and verify the
    // worst observed latency against the guarantee.
    let plan = hybrid.broadcast_plan(&catalog).unwrap();
    let hot: Vec<Request> = requests
        .iter()
        .filter(|r| r.video < 10)
        .map(|r| Request {
            at: r.at,
            video: VideoId(r.video),
        })
        .collect();
    let sim = SystemSim::new(&plan, Mbps(1.5), ClientPolicy::LatestFeasible);
    let stats = sim
        .execute(RunConfig::new(&hot))
        .expect("plan serves all hot titles")
        .summary;
    println!("\n== simulated broadcast clients ==");
    println!("sessions              : {}", stats.sessions);
    println!(
        "mean / worst latency  : {:.3} / {:.3}",
        stats.mean_latency, stats.worst_latency
    );
    println!(
        "worst client buffer   : {:.1}",
        stats.worst_buffer.to_mbytes()
    );
    println!("peak concurrent views : {}", stats.peak_active_sessions);
    assert!(stats.worst_latency <= report.broadcast_worst_latency);
    println!("\nevery simulated wait stayed within the guarantee ✓");
}
