#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p skyscraper-broadcasting -p vod-units -p sb-core -p sb-pyramid \
    -p sb-sim -p sb-workload -p sb-batching -p sb-metrics -p sb-control \
    -p sb-resilience -p sb-analysis -p sb-cli -p sb-bench

echo "==> popularity-shift smoke (static vs dynamic control)"
cargo run -q -p sb-cli --bin sbcast -- control --horizon 300 --seeds 11 --threads 2

echo "==> resilience smoke (fault study, determinism across reruns)"
res_a="$(mktemp)"; res_b="$(mktemp)"
thr_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir"' EXIT
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    2>/dev/null > "$res_a"
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    2>/dev/null > "$res_b"
diff -u "$res_a" "$res_b"

echo "==> throughput smoke (streaming core, determinism across --threads 1/2/4)"
for n in 1 2 4; do
    cargo run -q -p sb-cli --bin sbcast -- throughput --samples 40 --threads "$n" \
        --json "$thr_dir/thr-$n.json" 2>/dev/null > "$thr_dir/thr-$n.out"
done
test -s "$thr_dir/thr-1.json" || { echo "BENCH_throughput.json is empty"; exit 1; }
grep -q '"peak_agenda"' "$thr_dir/thr-1.json"
grep -q '"churn"' "$thr_dir/thr-1.json"
diff -u "$thr_dir/thr-1.json" "$thr_dir/thr-2.json"
diff -u "$thr_dir/thr-1.json" "$thr_dir/thr-4.json"
diff -u "$thr_dir/thr-1.out" "$thr_dir/thr-2.out"
diff -u "$thr_dir/thr-1.out" "$thr_dir/thr-4.out"

echo "==> scale smoke (sharded core, determinism across --shards 1/2/4 x --threads 1/4)"
scale_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir"' EXIT
for s in 1 2 4; do
    for n in 1 4; do
        cargo run -q -p sb-cli --bin sbcast -- scale --sessions 3000 --horizon 300 \
            --shards "$s" --threads "$n" \
            --json "$scale_dir/scale-$s-$n.json" 2>/dev/null > "$scale_dir/scale-$s-$n.out"
    done
done
test -s "$scale_dir/scale-1-1.json" || { echo "BENCH_scale.json is empty"; exit 1; }
grep -q '"shard_peak_agenda"' "$scale_dir/scale-1-1.json"
grep -q '"sessions_per_sim_second"' "$scale_dir/scale-1-1.json"
for s in 1 2 4; do
    for n in 1 4; do
        diff -u "$scale_dir/scale-1-1.json" "$scale_dir/scale-$s-$n.json"
        diff -u "$scale_dir/scale-1-1.out" "$scale_dir/scale-$s-$n.out"
    done
done

echo "==> scale release smoke (>= 1M-session streaming cells)"
./target/release/scale_bench --shards 4 --threads 4 \
    --json "$scale_dir/scale-full.json" > "$scale_dir/scale-full.out" 2>/dev/null
grep -q '"total_sessions": 1100000' "$scale_dir/scale-full.json"

echo "==> doc lint (shipped docs name the shipped interfaces)"
grep -q '^## 11\. Sharded scale-out and the one-RunConfig API' DESIGN.md
grep -q 'shard_invariance' DESIGN.md
grep -q 'sbcast -- scale' README.md
grep -q 'BENCH_scale.json' README.md

echo "verify: OK"
