#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace: the smokes below invoke target/release/{throughput_bench,
# scale_bench} directly — a root-package build would leave them stale.
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p skyscraper-broadcasting -p vod-units -p sb-core -p sb-pyramid \
    -p sb-sim -p sb-workload -p sb-batching -p sb-metrics -p sb-control \
    -p sb-resilience -p sb-analysis -p sb-cli -p sb-bench

echo "==> popularity-shift smoke (static vs dynamic control)"
cargo run -q -p sb-cli --bin sbcast -- control --horizon 300 --seeds 11 --threads 2

echo "==> resilience smoke (fault study, determinism across reruns)"
res_a="$(mktemp)"; res_b="$(mktemp)"
thr_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir"' EXIT
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    2>/dev/null > "$res_a"
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    2>/dev/null > "$res_b"
diff -u "$res_a" "$res_b"

echo "==> throughput smoke (streaming core, determinism across --threads 1/2/4)"
for n in 1 2 4; do
    cargo run -q -p sb-cli --bin sbcast -- throughput --samples 40 --threads "$n" \
        --json "$thr_dir/thr-$n.json" 2>/dev/null > "$thr_dir/thr-$n.out"
done
test -s "$thr_dir/thr-1.json" || { echo "BENCH_throughput.json is empty"; exit 1; }
grep -q '"peak_agenda"' "$thr_dir/thr-1.json"
grep -q '"churn"' "$thr_dir/thr-1.json"
diff -u "$thr_dir/thr-1.json" "$thr_dir/thr-2.json"
diff -u "$thr_dir/thr-1.json" "$thr_dir/thr-4.json"
diff -u "$thr_dir/thr-1.out" "$thr_dir/thr-2.out"
diff -u "$thr_dir/thr-1.out" "$thr_dir/thr-4.out"

echo "==> scale smoke (sharded core, determinism across --shards 1/2/4 x --threads 1/4)"
scale_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir"' EXIT
for s in 1 2 4; do
    for n in 1 4; do
        cargo run -q -p sb-cli --bin sbcast -- scale --sessions 3000 --horizon 300 \
            --shards "$s" --threads "$n" \
            --json "$scale_dir/scale-$s-$n.json" 2>/dev/null > "$scale_dir/scale-$s-$n.out"
    done
done
test -s "$scale_dir/scale-1-1.json" || { echo "BENCH_scale.json is empty"; exit 1; }
grep -q '"shard_peak_agenda"' "$scale_dir/scale-1-1.json"
grep -q '"sessions_per_sim_second"' "$scale_dir/scale-1-1.json"
for s in 1 2 4; do
    for n in 1 4; do
        diff -u "$scale_dir/scale-1-1.json" "$scale_dir/scale-$s-$n.json"
        diff -u "$scale_dir/scale-1-1.out" "$scale_dir/scale-$s-$n.out"
    done
done

echo "==> agenda smoke (heap vs wheel byte identity, 6-way over --shards)"
# The wheel backend must reproduce the heap bytes exactly — JSON artifact
# and stdout — at every shard count. 6 runs: {heap, wheel} x shards {1, 2, 4}.
agenda_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir" "$agenda_dir"' EXIT
for a in heap wheel; do
    for s in 1 2 4; do
        cargo run -q -p sb-cli --bin sbcast -- scale --sessions 3000 --horizon 300 \
            --shards "$s" --threads 2 --agenda "$a" \
            --json "$agenda_dir/ag-$a-$s.json" 2>/dev/null > "$agenda_dir/ag-$a-$s.out"
    done
done
for a in heap wheel; do
    for s in 1 2 4; do
        diff -u "$agenda_dir/ag-heap-1.json" "$agenda_dir/ag-$a-$s.json"
        diff -u "$agenda_dir/ag-heap-1.out" "$agenda_dir/ag-$a-$s.out"
    done
done
# The same identity on the fault-study path (control plane + degradation).
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    --agenda wheel 2>/dev/null > "$agenda_dir/res-wheel.out"
diff -u "$res_a" "$agenda_dir/res-wheel.out"

echo "==> scenario smoke (metro pack, determinism across --shards x --threads x --agenda)"
scn_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir" "$agenda_dir" "$scn_dir"' EXIT
for combo in "1 1 heap" "2 4 wheel" "4 2 heap"; do
    read -r s n a <<<"$combo"
    cargo run -q --release -p sb-cli --bin sbcast -- scenario --profile smoke \
        --shards "$s" --threads "$n" --agenda "$a" \
        --json "$scn_dir/scn-$s-$n-$a.json" 2>/dev/null > "$scn_dir/scn-$s-$n-$a.out"
done
test -s "$scn_dir/scn-1-1-heap.json" || { echo "BENCH_scenario.json is empty"; exit 1; }
grep -q '"demand_share"' "$scn_dir/scn-1-1-heap.json"
grep -q '"dynamic_report"' "$scn_dir/scn-1-1-heap.json"
grep -q '"shard_peak_agenda"' "$scn_dir/scn-1-1-heap.json"
diff -u "$scn_dir/scn-1-1-heap.json" "$scn_dir/scn-2-4-wheel.json"
diff -u "$scn_dir/scn-1-1-heap.json" "$scn_dir/scn-4-2-heap.json"
diff -u "$scn_dir/scn-1-1-heap.out" "$scn_dir/scn-2-4-wheel.out"
diff -u "$scn_dir/scn-1-1-heap.out" "$scn_dir/scn-4-2-heap.out"

echo "==> recovery smoke (kill/resume byte identity, 6-way over --shards x --agenda)"
# The flagship crash-recovery invariant through the CLI: a supervised run
# whose shards are killed and resumed from checkpoints must print
# "identical to uninterrupted execute: yes" (the binary exits nonzero on
# divergence) at every shard count on both agenda backends.
rec_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir" "$agenda_dir" "$scn_dir" "$rec_dir"' EXIT
for s in 1 2 4; do
    for a in heap wheel; do
        chaos="kill:0@ckpt:1;kill:0@tick:40000"
        if [ "$s" -gt 1 ]; then chaos="$chaos;kill:1@ckpt:2"; fi
        cargo run -q --release -p sb-cli --bin sbcast -- recovery \
            --sessions 2000 --horizon 200 --cadence 25 --shards "$s" --threads 2 \
            --agenda "$a" --chaos "$chaos" 2>/dev/null > "$rec_dir/rec-$s-$a.out"
        grep -q 'identical to uninterrupted execute: yes' "$rec_dir/rec-$s-$a.out"
    done
    # Same shard count, other backend: byte-identical stdout.
    diff -u "$rec_dir/rec-$s-heap.out" "$rec_dir/rec-$s-wheel.out"
done

echo "==> corrupt-checkpoint smoke (checksum rejection + fall-back, then graceful degradation)"
cargo run -q --release -p sb-cli --bin sbcast -- recovery \
    --sessions 2000 --horizon 200 --cadence 25 --shards 2 --threads 2 \
    --chaos "corrupt:1@ckpt:2;kill:1@ckpt:2" 2>/dev/null > "$rec_dir/rec-corrupt.out"
grep -q 'corrupt rejected 1' "$rec_dir/rec-corrupt.out"
grep -q 'identical to uninterrupted execute: yes' "$rec_dir/rec-corrupt.out"
# A shard that exhausts its restart budget degrades to an explicit
# partial run with the lost shard named — exit 0, never a panic.
cargo run -q --release -p sb-cli --bin sbcast -- recovery \
    --sessions 2000 --horizon 200 --cadence 25 --shards 2 --threads 2 \
    --chaos "kill:1@ckpt:1;kill:1@ckpt:2" --retry 1 --retry-attempts 1 \
    2>/dev/null > "$rec_dir/rec-partial.out"
grep -q 'PARTIAL RUN: 1 shard(s) lost' "$rec_dir/rec-partial.out"
grep -q 'shard 1: lost after 1 attempt(s)' "$rec_dir/rec-partial.out"
# And a corrupted chaos spec / zero cadence fail with typed errors.
if cargo run -q --release -p sb-cli --bin sbcast -- recovery --cadence 0 2>"$rec_dir/err0"; then
    echo "cadence 0 must be rejected"; exit 1
fi
grep -q 'checkpoint cadence is 0 sessions' "$rec_dir/err0"
if cargo run -q --release -p sb-cli --bin sbcast -- recovery --chaos "corrupt:0@tick:9" \
    2>"$rec_dir/err1"; then
    echo "corrupt@tick must be rejected"; exit 1
fi
grep -q 'corruption targets checkpoints, not ticks' "$rec_dir/err1"

echo "==> recovery sweep artifact (BENCH_recovery.json, cadence trade)"
cargo run -q --release -p sb-cli --bin sbcast -- recovery --mode sweep --profile smoke \
    --threads 4 --json "$rec_dir/rec-sweep.json" 2>/dev/null > "$rec_dir/rec-sweep.out"
test -s "$rec_dir/rec-sweep.json" || { echo "BENCH_recovery.json is empty"; exit 1; }
grep -q '"replayed_sessions"' "$rec_dir/rec-sweep.json"
grep -q '"identical": true' "$rec_dir/rec-sweep.json"

echo "==> frontier smoke (scheme zoo Pareto frontier, 6-way over --shards x --threads x --agenda)"
# The frontier artifact must be byte-identical — JSON and stdout — for
# every knob combination: {shards 1, 2} x {threads 1, 2} x {heap, wheel}.
fr_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir" "$agenda_dir" "$scn_dir" "$rec_dir" "$fr_dir"' EXIT
for combo in "1 1 heap" "1 2 wheel" "2 1 wheel" "2 2 heap" "1 2 heap" "2 2 wheel"; do
    read -r s n a <<<"$combo"
    cargo run -q --release -p sb-cli --bin sbcast -- frontier --profile smoke \
        --shards "$s" --threads "$n" --agenda "$a" \
        --json "$fr_dir/fr-$s-$n-$a.json" 2>/dev/null > "$fr_dir/fr-$s-$n-$a.out"
done
test -s "$fr_dir/fr-1-1-heap.json" || { echo "BENCH_frontier.json is empty"; exit 1; }
grep -q '"on_frontier_analytic"' "$fr_dir/fr-1-1-heap.json"
grep -q '"sim_jitter_free"' "$fr_dir/fr-1-1-heap.json"
grep -q 'CTIFB' "$fr_dir/fr-1-1-heap.json"
grep -q 'AQHB' "$fr_dir/fr-1-1-heap.json"
for combo in "1 2 wheel" "2 1 wheel" "2 2 heap" "1 2 heap" "2 2 wheel"; do
    read -r s n a <<<"$combo"
    diff -u "$fr_dir/fr-1-1-heap.json" "$fr_dir/fr-$s-$n-$a.json"
    diff -u "$fr_dir/fr-1-1-heap.out" "$fr_dir/fr-$s-$n-$a.out"
done
# SB survives both frontiers at the paper operating point (B=320, M=10).
grep -q 'AS' "$fr_dir/fr-1-1-heap.out"
# The buggy-HB opt-in surfaces the refuted point as infeasible.
cargo run -q --release -p sb-cli --bin sbcast -- frontier --profile smoke --buggy-hb yes \
    --json "$fr_dir/fr-hb.json" 2>/dev/null > "$fr_dir/fr-hb.out"
grep -q '"sim_jitter_free": false' "$fr_dir/fr-hb.json"

echo "==> frontier wall-clock artifact (frontier_bench, smoke-sized)"
./target/release/frontier_bench --sessions 8 --threads 4 --shards 2 \
    --json "$fr_dir/fr-bench.json" > "$fr_dir/fr-bench.out" 2>/dev/null
test -s "$fr_dir/fr-bench.json" || { echo "frontier_bench JSON missing"; exit 1; }
grep -q '"cells"' "$fr_dir/fr-bench.json"

echo "==> distribution smoke (distributed tier, 6-way over --shards x --threads x --agenda)"
# The distributed-tier artifact must be byte-identical — JSON and stdout —
# for every knob combination: {shards 1, 2} x {threads 1, 2} x {heap, wheel}.
dist_dir="$(mktemp -d)"
trap 'rm -f "$res_a" "$res_b"; rm -rf "$thr_dir" "$scale_dir" "$agenda_dir" "$scn_dir" "$rec_dir" "$fr_dir" "$dist_dir"' EXIT
for combo in "1 1 heap" "1 2 wheel" "2 1 wheel" "2 2 heap" "1 2 heap" "2 2 wheel"; do
    read -r s n a <<<"$combo"
    cargo run -q --release -p sb-cli --bin sbcast -- distribution --profile smoke \
        --shards "$s" --threads "$n" --agenda "$a" \
        --json "$dist_dir/dist-$s-$n-$a.json" 2>/dev/null > "$dist_dir/dist-$s-$n-$a.out"
done
test -s "$dist_dir/dist-1-1-heap.json" || { echo "BENCH_distribution.json is empty"; exit 1; }
grep -q '"HotHead"' "$dist_dir/dist-1-1-heap.json"
grep -q '"peer_windows"' "$dist_dir/dist-1-1-heap.json"
grep -q '"savings_vs_naive"' "$dist_dir/dist-1-1-heap.json"
grep -q '"bound_mbps"' "$dist_dir/dist-1-1-heap.json"
for combo in "1 2 wheel" "2 1 wheel" "2 2 heap" "1 2 heap" "2 2 wheel"; do
    read -r s n a <<<"$combo"
    diff -u "$dist_dir/dist-1-1-heap.json" "$dist_dir/dist-$s-$n-$a.json"
    diff -u "$dist_dir/dist-1-1-heap.out" "$dist_dir/dist-$s-$n-$a.out"
done
# All four placement policies price both peer modes in the stdout table.
for policy in full partitioned hothead proportional; do
    grep -q "^$policy" "$dist_dir/dist-1-1-heap.out"
done

echo "==> distribution wall-clock artifact (distribution_bench, default artifact name)"
dist_bench="$PWD/target/release/distribution_bench"
(cd "$dist_dir" && "$dist_bench" --threads 4 --shards 2 > dist-bench.out 2>/dev/null)
test -s "$dist_dir/BENCH_distribution.json" || { echo "BENCH_distribution.json missing"; exit 1; }
test -s "$dist_dir/BENCH_wallclock.json" || { echo "distribution wallclock missing"; exit 1; }
grep -q '"distribution_bench"' "$dist_dir/BENCH_wallclock.json"

echo "==> release profile keeps integer overflow checks on"
grep -A2 '^\[profile\.release\]' Cargo.toml | grep -q 'overflow-checks = true'

echo "==> wall-clock trajectory (throughput_bench, heap + wheel timed passes)"
./target/release/throughput_bench --json "$thr_dir/thr-bench.json" \
    > "$thr_dir/thr-bench.out" 2>"$thr_dir/thr-bench.err"
# BENCH_wallclock.json is nondeterministic by design (wall seconds): it
# is checked for shape, never diffed — keep it OUT of the byte-identity
# smokes above.
wallclock="$thr_dir/BENCH_wallclock.json"
test -s "$wallclock" || { echo "BENCH_wallclock.json missing"; exit 1; }
for field in '"backend"' '"sessions_per_sec"' '"events_per_sec"' '"wall_secs"' '"wheel_speedup"'; do
    grep -q "$field" "$wallclock" || { echo "BENCH_wallclock.json lacks $field"; exit 1; }
done
grep -q '"heap"' "$wallclock" || { echo "no heap pass in BENCH_wallclock.json"; exit 1; }
grep -q '"wheel"' "$wallclock" || { echo "no wheel pass in BENCH_wallclock.json"; exit 1; }
grep '"wheel_speedup"' "$wallclock"

echo "==> scale release smoke (>= 10M streamed sessions on the wheel backend)"
# 2.2M-session grid: 4 cells + the flagship pass = 11M streamed sessions.
./target/release/scale_bench --shards 4 --threads 4 --agenda wheel --sessions 2200000 \
    --json "$scale_dir/scale-full.json" > "$scale_dir/scale-full.out" 2>/dev/null
grep -q '"total_sessions": 2200000' "$scale_dir/scale-full.json"
test -s "$scale_dir/BENCH_wallclock.json" || { echo "scale wallclock missing"; exit 1; }
grep -q '"scale_bench"' "$scale_dir/BENCH_wallclock.json"

echo "==> scenario wall-clock artifact (scenario_bench, paper grid)"
./target/release/scenario_bench --shards 2 --threads 4 \
    --json "$scn_dir/scn-bench.json" > "$scn_dir/scn-bench.out" 2>/dev/null
test -s "$scn_dir/BENCH_wallclock.json" || { echo "scenario wallclock missing"; exit 1; }
grep -q '"scenario_bench"' "$scn_dir/BENCH_wallclock.json"
grep -q '"flash"' "$scn_dir/scn-bench.json"

echo "==> criterion benches compile against the vendored deps"
cargo bench -p sb-bench --no-run -q

echo "==> doc lint (shipped docs name the shipped interfaces)"
grep -q '^## 11\. Sharded scale-out and the one-RunConfig API' DESIGN.md
grep -q 'shard_invariance' DESIGN.md
grep -q '^## 12\. The timing-wheel agenda' DESIGN.md
grep -q 'overflow' DESIGN.md
grep -q 'sbcast -- scale' README.md
grep -q 'BENCH_scale.json' README.md
grep -q '\-\-agenda wheel' README.md
grep -q 'BENCH_wallclock.json' README.md
grep -q '^## 13\. The metropolitan scenario pack' DESIGN.md
grep -q 'scenario_invariance' DESIGN.md
grep -q 'region_slots' DESIGN.md
grep -q 'sbcast -- scenario' README.md
grep -q 'BENCH_scenario.json' README.md
grep -q '^## 14\. Checkpoint/restore and the crash-recovery supervisor' DESIGN.md
grep -q 'SBCKPT' DESIGN.md
grep -q 'checkpoint_restore' DESIGN.md
grep -q 'recovery_supervisor' DESIGN.md
grep -q 'sbcast -- recovery' README.md
grep -q 'BENCH_recovery.json' README.md
grep -q '\-\-chaos' README.md
grep -q '^## 15\. The scheme zoo, completed: CTIFB, AQHB and the automated frontier' DESIGN.md
grep -q 'PlanIndex' DESIGN.md
grep -q 'sbcast -- frontier' README.md
grep -q 'BENCH_frontier.json' README.md
grep -q '^## 16\. The distributed tier: placement, routing and peer assist' DESIGN.md
grep -q 'PlacementPolicy' DESIGN.md
grep -q 'source-once' DESIGN.md
grep -q 'Study. trait' DESIGN.md
grep -q 'sbcast -- distribution' README.md
grep -q 'BENCH_distribution.json' README.md
grep -q '\-\-policies' README.md

echo "verify: OK"
