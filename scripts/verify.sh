#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p skyscraper-broadcasting -p vod-units -p sb-core -p sb-pyramid \
    -p sb-sim -p sb-workload -p sb-batching -p sb-metrics -p sb-control \
    -p sb-resilience -p sb-analysis -p sb-cli -p sb-bench

echo "==> popularity-shift smoke (static vs dynamic control)"
cargo run -q -p sb-cli --bin sbcast -- control --horizon 300 --seeds 11 --threads 2

echo "==> resilience smoke (fault study, determinism across reruns)"
res_a="$(mktemp)"; res_b="$(mktemp)"
trap 'rm -f "$res_a" "$res_b"' EXIT
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    2>/dev/null > "$res_a"
cargo run -q -p sb-cli --bin sbcast -- resilience --horizon 200 --seeds 7 --threads 2 \
    2>/dev/null > "$res_b"
diff -u "$res_a" "$res_b"

echo "verify: OK"
