//! # Skyscraper Broadcasting — a SIGCOMM '97 reproduction in Rust
//!
//! This facade crate re-exports the whole workspace so applications (and
//! the `examples/`) can depend on one crate:
//!
//! * [`core`] — the Skyscraper scheme itself (series,
//!   fragmentation, channel design, the exact slot-level client model);
//! * [`pyramid`] — the baselines: PB:a/b, PPB:a/b, staggered;
//! * [`sim`] — the metropolitan VoD simulator;
//! * [`workload`] — Zipf popularity, Poisson arrivals,
//!   reneging;
//! * [`batching`] — scheduled multicast for the unpopular
//!   tail, and the §1 hybrid server;
//! * [`control`] — the online control plane: popularity
//!   estimation, dynamic channel reallocation, admission control;
//! * [`resilience`] — bursty-loss channels, fault scripts,
//!   and graceful-degradation policies;
//! * [`metrics`] — the deterministic counters/gauges/histograms
//!   registry the simulators report into;
//! * [`analysis`] — every figure and table of the paper's
//!   evaluation, regenerated;
//! * [`units`] — the physical-quantity newtypes underneath it
//!   all.
//!
//! Start with [`prelude`], or see `examples/quickstart.rs`.

#![forbid(unsafe_code)]

pub use sb_analysis as analysis;
pub use sb_batching as batching;
pub use sb_control as control;
pub use sb_core as core;
pub use sb_metrics as metrics;
pub use sb_pyramid as pyramid;
pub use sb_resilience as resilience;
pub use sb_sim as sim;
pub use sb_workload as workload;
pub use vod_units as units;

/// The things almost every program wants in scope: the scheme and
/// baseline constructors, the single-session policy helpers, and —
/// via [`sb_sim::prelude`] — the whole `execute(RunConfig)` run
/// surface (builder, outcome, agenda/partition selectors, distributed
/// tier) plus the supervised-run outcomes from `sb-resilience`.
pub mod prelude {
    pub use sb_core::plan::VideoId;
    pub use sb_core::prelude::*;
    pub use sb_pyramid::{PermutationPyramid, PyramidBroadcasting, StaggeredBroadcasting};
    pub use sb_resilience::{PartialRun, Recovered};
    pub use sb_sim::policy::{schedule_client, ClientPolicy};
    pub use sb_sim::prelude::*;
    pub use vod_units::{MBytes, Mbits, Mbps, Minutes, Seconds};
}
